package harness

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/blockdev"
	"repro/internal/lightnvm"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/ppa"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "lifetime",
		Title: "Device lifetime: durability and read tails across the P/E budget, scrubber on vs off",
		Run:   runLifetime,
	})
}

// lifetimeGeometry is a small 8-PU device (same channel fan-out as the
// wa experiment, so it shards 4 ways) that can be aged through its whole
// P/E budget in seconds of virtual time.
func lifetimeGeometry(blocksPerPlane int) ppa.Geometry {
	return ppa.Geometry{
		Channels: 4, PUsPerChannel: 2, PlanesPerPU: 4,
		BlocksPerPlane: blocksPerPlane, PagesPerBlock: 32,
		SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
	}
}

// lifeRow is one life stage of one configuration.
type lifeRow struct {
	stage    int
	lifePct  float64 // mean P/E consumed / PECycleLimit
	maxPE    int
	bad      int64 // retired blocks (host view)
	lost     int   // unreadable sectors found by the full scan
	gcLost   int64 // sectors GC abandoned because their reads failed
	p99      time.Duration
	p999     time.Duration
	wa       float64
	scrubMB  float64 // data rewritten by scrub refreshes this stage
	ageRef   int64
	retryRef int64
	retries  int64 // device read-retry tiers charged this stage
}

// runLifetime ages a small device through most of its P/E budget under a
// hot/cold overwrite (95% of writes to a strided hot eighth), with a bake
// pause per stage so retention errors accumulate on the cold majority. At
// every stage boundary a full scan measures durability (unreadable
// sectors) and read tail latency. The same deterministic schedule runs
// twice: once with the pblk scrubber patrolling closed groups, once
// without. Mid-life, the device crash-recovers via the mount scan.
//
// Expected shape: the scrubber-off baseline accumulates retention BER on
// cold blocks until reads need deep retry tiers (inflated p99.9) and then
// exhaust them (lost sectors, GC-lost sectors); the scrubber-on run
// refreshes cold groups before decay crosses the retry horizon and loses
// nothing, at the cost of scrub write traffic.
func runLifetime(o Options, w io.Writer) error {
	o = Defaults(o)
	peLimit := o.PELimit
	if peLimit == 0 {
		peLimit = 24
		if o.Quick {
			peLimit = 14
		}
	}
	accel := o.RetentionAccel
	if accel == 0 {
		accel = 1
		if o.Quick {
			// Fewer stages means less wall-clock retention; bake harder so
			// the decay story still completes within two stages.
			accel = 2
		}
	}
	tiers := o.ReadRetry
	if tiers == 0 {
		tiers = 6
	} else if tiers < 0 {
		tiers = 0
	}
	stages := 4
	if o.Quick {
		stages = 2
	}
	const blocks = 8
	const agingX = 3.0 // drive-writes of overwrite per stage
	const bake = 1500 * time.Millisecond

	media := func() nand.Config {
		m := nand.DefaultConfig()
		m.PECycleLimit = peLimit
		m.BERWearCoeff = 2e-3
		m.BERRetentionCoeff = 1e-3
		m.RetentionAccel = accel
		m.BERDisturbCoeff = 1e-5
		m.ECCBER = 1e-3
		m.ReadRetryStep = 1e-3
		m.ReadRetryTiers = tiers
		m.GrownBadProb = 0.1
		return m
	}

	run := func(scrub bool) ([]lifeRow, time.Duration, error) {
		env, shards := newSimEnv(o, o.Seed, parallelShards)
		dev, err := newDevice(env, shards, ocssd.Config{
			Geometry:  lifetimeGeometry(blocks),
			Timing:    ocssd.DefaultTiming(),
			Media:     media(),
			PageCache: true,
			Seed:      o.Seed,
		})
		if err != nil {
			return nil, 0, err
		}
		ln := lightnvm.Register(fmt.Sprintf("life-scrub%v", scrub), dev)
		cfg := pblk.Config{OverProvision: 0.4, ActivePUs: 4}
		if scrub {
			cfg.ScrubInterval = 5 * time.Millisecond
			cfg.ScrubRetentionAge = 800 * time.Millisecond
			cfg.ScrubRetryThreshold = 2
		}
		geo := lifetimeGeometry(blocks)
		totalBlocks := geo.TotalPUs() * geo.PlanesPerPU * geo.BlocksPerPlane
		var rows []lifeRow
		var recovery time.Duration
		env.Go("lifetime", func(p *sim.Proc) {
			k, err := pblk.New(p, ln, "pblk-life", cfg)
			if err != nil {
				panic(err)
			}
			defer func() { k.Stop(p) }()
			const chunk = int64(64 << 10)
			// Leave an eighth of the LBA space unused: capacity is re-derived
			// from usable groups at mount, so a mid-life remount on a device
			// that grew bad blocks exports slightly less — the written span
			// must stay inside it.
			nChunks := k.Capacity() / chunk * 7 / 8
			for ci := int64(0); ci < nChunks; ci++ {
				if err := k.Write(p, ci*chunk, nil, chunk); err != nil {
					panic(err)
				}
			}
			if err := k.Flush(p); err != nil {
				panic(err)
			}
			rng := newRand(o.Seed + 11)
			for s := 1; s <= stages; s++ {
				base := k.Stats
				baseDev := dev.Stats
				overwriteWindow(p, env, k, int64(agingX*float64(nChunks)), nChunks, chunk, 8, rng, nil, true)
				p.Sleep(bake) // retention accumulates on the cold majority
				lost, lats := lifeScan(p, env, k, nChunks, chunk)
				wear := ln.WearOf(lightnvm.PURange{Begin: 0, End: geo.TotalPUs()})
				user := k.Stats.UserWrites - base.UserWrites
				moved := k.Stats.GCMovedSectors - base.GCMovedSectors
				padded := k.Stats.PaddedSectors - base.PaddedSectors
				row := lifeRow{
					stage:    s,
					lifePct:  float64(wear.TotalPE) / float64(totalBlocks) / float64(peLimit) * 100,
					maxPE:    wear.MaxPE,
					bad:      k.Stats.BadBlocks,
					lost:     lost,
					gcLost:   k.Stats.GCLostSectors,
					scrubMB:  float64(k.Stats.ScrubbedSectors-base.ScrubbedSectors) * 4096 / 1e6,
					ageRef:   k.Stats.ScrubAgeRefreshes - base.ScrubAgeRefreshes,
					retryRef: k.Stats.ScrubRetryRefreshes - base.ScrubRetryRefreshes,
					retries:  dev.Stats.ReadRetries - baseDev.ReadRetries,
				}
				if user > 0 {
					row.wa = float64(user+moved+padded) / float64(user)
				}
				if len(lats) > 0 {
					sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
					row.p99 = lats[len(lats)*99/100]
					row.p999 = lats[len(lats)*999/1000]
				}
				rows = append(rows, row)
				if s == stages/2 {
					// Mid-life dirty shutdown: drop the FTL and the device's
					// volatile state, then remount through the scan recovery.
					k.Crash()
					t0 := env.Now()
					k, err = pblk.New(p, ln, "pblk-life", cfg)
					if err != nil {
						panic(err)
					}
					recovery = env.Now() - t0
				}
			}
		})
		env.Run()
		return rows, recovery, nil
	}

	emit := func(title string, rows []lifeRow, recovery time.Duration) {
		section(w, title)
		t := &table{header: []string{"stage", "life %", "max P/E", "bad blk", "lost", "gc lost", "read p99 us", "p99.9 us", "WA", "scrub MB", "refresh age/retry", "dev retries"}}
		for _, r := range rows {
			t.add(fmt.Sprint(r.stage), fmt.Sprintf("%.0f", r.lifePct), fmt.Sprint(r.maxPE),
				fmt.Sprint(r.bad), fmt.Sprint(r.lost), fmt.Sprint(r.gcLost),
				us(r.p99), us(r.p999), fmt.Sprintf("%.2f", r.wa),
				fmt.Sprintf("%.1f", r.scrubMB), fmt.Sprintf("%d/%d", r.ageRef, r.retryRef),
				fmt.Sprint(r.retries))
		}
		t.write(w)
		fmt.Fprintf(w, "mid-life crash: scan recovery remounted in %v\n", recovery.Round(time.Microsecond))
	}

	offRows, offRec, err := run(false)
	if err != nil {
		return err
	}
	onRows, onRec, err := run(true)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nP/E budget %d cycles, retention accel %.0fx, %d read-retry tiers, %d life stages of %.0f drive-writes (95%% to the hot eighth)\n",
		peLimit, accel, tiers, stages, agingX)
	emit("scrubber off (baseline)", offRows, offRec)
	emit("scrubber on (patrol + refresh + relocate)", onRows, onRec)
	fmt.Fprintln(w, "\nexpected shape: without scrubbing, cold blocks age past the retry horizon —")
	fmt.Fprintln(w, "reads burn ever deeper retry tiers until sectors become unreadable (lost /")
	fmt.Fprintln(w, "gc lost). The scrubber refreshes cold groups before decay crosses the")
	fmt.Fprintln(w, "horizon and loses nothing, paying for durability with scrub write traffic:")
	fmt.Fprintln(w, "higher WA, faster P/E consumption, and refresh rewrites competing with host")
	fmt.Fprintln(w, "reads (at real-time retention rates the patrol is far sparser than under")
	fmt.Fprintln(w, "this accelerated bake).")
	return nil
}

// lifeScan reads the whole LBA space at QD16, returning the number of
// unreadable (lost) 4 KB sectors and the per-chunk read latencies of the
// chunks that read clean.
func lifeScan(p *sim.Proc, env *sim.Env, k *pblk.Pblk, nChunks, chunk int64) (int, []time.Duration) {
	const qd = 16
	q := k.OpenQueue(env, qd)
	done := env.NewEvent()
	var lats []time.Duration
	var failed []int64
	outstanding, next := 0, int64(0)
	var submit func()
	submit = func() {
		for outstanding < qd && next < nChunks {
			off := next * chunk
			outstanding++
			next++
			q.Submit(&blockdev.Request{
				Op: blockdev.ReqRead, Off: off, Length: chunk,
				OnComplete: func(r *blockdev.Request) {
					if r.Err != nil {
						failed = append(failed, r.Off)
					} else {
						lats = append(lats, r.Latency())
					}
					outstanding--
					submit()
					if outstanding == 0 {
						done.Signal()
					}
				},
			})
		}
	}
	submit()
	if outstanding > 0 {
		p.Wait(done)
	}
	q.Drain(p)
	// Count the damage inside failed chunks sector by sector.
	lost := 0
	buf := make([]byte, 4096)
	for _, off := range failed {
		for so := int64(0); so < chunk; so += 4096 {
			if err := k.Read(p, off+so, buf, 4096); err != nil {
				lost++
			}
		}
	}
	return lost, lats
}
