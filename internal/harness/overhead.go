package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/blockdev"
	"repro/internal/fio"
	"repro/internal/nullblk"
	"repro/internal/pblk"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "overhead",
		Title: "§5.1: pblk host overhead over a null block device",
		Run:   runOverhead,
	})
}

// runOverhead mirrors the paper's methodology: compare 4K request latency
// on a null block device with and without pblk's host-side datapath cost.
// The paper measures 1.97→2.32 µs reads (+18%) and 2.0→2.9 µs writes
// (+45%).
func runOverhead(o Options, w io.Writer) error {
	o = Defaults(o)
	section(w, "pblk CPU/latency overhead (paper: reads 1.97->2.32us +18%, writes 2.0->2.9us +45%)")

	cfg := pblk.Default(pblk.Config{})
	measure := func(dev blockdev.Device) (r, wr time.Duration) {
		env := sim.NewEnv(o.Seed)
		var rr, wo *fio.Result
		env.Go("main", func(p *sim.Proc) {
			rr = mustRun(p, dev, fio.Job{Name: "r", Pattern: fio.RandRead, BS: 4096, MaxOps: 20000})
			wo = mustRun(p, dev, fio.Job{Name: "w", Pattern: fio.RandWrite, BS: 4096, MaxOps: 20000})
		})
		env.Run()
		return rr.ReadLat.Mean(), wo.WriteLat.Mean()
	}

	base := nullblk.New(nullblk.DefaultConfig())
	withPblk := blockdev.WithLatency(nullblk.New(nullblk.DefaultConfig()),
		cfg.HostReadOverhead, cfg.HostWriteOverhead)

	r0, w0 := measure(base)
	r1, w1 := measure(withPblk)

	t := &table{header: []string{"path", "read us", "write us"}}
	t.add("null block device", fmt.Sprintf("%.2f", usF(r0)), fmt.Sprintf("%.2f", usF(w0)))
	t.add("null + pblk datapath", fmt.Sprintf("%.2f", usF(r1)), fmt.Sprintf("%.2f", usF(w1)))
	t.add("overhead", fmt.Sprintf("%.2f (+%.0f%%)", usF(r1-r0), pct(r1, r0)),
		fmt.Sprintf("%.2f (+%.0f%%)", usF(w1-w0), pct(w1, w0)))
	t.write(w)
	return nil
}

func usF(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func pct(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return (float64(a)/float64(b) - 1) * 100
}
