package harness

import (
	"fmt"
	"io"
	"time"

	"repro/internal/lightnvm"
	"repro/internal/lsmdb"
	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/ppa"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "wa-e2e",
		Title: "LSM on open-channel: combined app x FTL write amplification vs hint policy",
		Run:   runWAE2E,
	})
}

// waE2EGeometry is a small device (8 PUs, ~1 MB block groups) so every
// stack cycles the media — the whole free pool consumed and reclaimed —
// within a few drive-writes of overwrite volume.
func waE2EGeometry(blocksPerPlane int) ppa.Geometry {
	return ppa.Geometry{
		Channels: 4, PUsPerChannel: 2, PlanesPerPU: 2,
		BlocksPerPlane: blocksPerPlane, PagesPerBlock: 32,
		SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
	}
}

// waE2EMode is one stacking of the LSM engine over pblk.
type waE2EMode struct {
	name   string
	policy pblk.HintPolicy
	hints  bool // engine tags SSTable writes HintCold
}

var waE2EModes = []waE2EMode{
	// The log-on-log baseline: the FTL sees one undifferentiated write
	// stream, so WAL laps, flushed memtables, and compaction output share
	// block groups and GC untangles them by copying.
	{"stacked baseline (ignore)", pblk.HintIgnore, false},
	// Hinted table writes ride the GC/cold stream: segregated from hot
	// WAL traffic but still mixed with the collector's own rewrites.
	{"cold-stream hints", pblk.HintColdStream, true},
	// Flash-native: table writes get a dedicated append stream, so a
	// compaction that erases its inputs leaves whole groups invalid and
	// reclaim is a pure erase — the LSM's compaction IS the GC.
	{"flash-native stream", pblk.HintNativeStream, true},
}

type waE2ERow struct {
	name   string
	appWA  float64 // engine bytes out per user byte in
	ftlWA  float64 // media sectors per engine sector
	comb   float64 // product: media bytes per user byte
	wMBps  float64 // overwrite throughput, measured pass
	stalls int64
	p99    time.Duration // read p99 under readwhilewriting
}

// waE2EDBConfig sizes the engine to the device, the way a flash-native
// deployment would: 2 KB entries packed two to a 4 KB block (one record
// is 15+16+2016 = 2047 bytes, so a block is exactly one sector — zero
// format padding), and table slots set to the FTL's erase unit so every
// SSTable consumes exactly one block group of the append stream. All
// three stacks run the identical engine config; only the hint policy
// differs, so the comparison isolates what the FTL does with the stream.
// The segment (table slot) spans lanes x erase unit: pblk stripes a
// stream's units round-robin over its lanes, so a segment this size lays
// down exactly one whole block group per lane and a trimmed table
// invalidates whole groups.
func waE2EDBConfig(o Options, hints bool, segment int64) lsmdb.Config {
	cfg := lsmdb.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.KeySize = 16
	cfg.ValueSize = 2016
	cfg.MemtableSize = segment - 160<<10
	cfg.WALSize = 4 << 20
	cfg.WALSyncBytes = 128 << 10
	cfg.L0CompactionTrigger = 2
	cfg.L0StallLimit = 4
	cfg.LevelRatio = 3
	cfg.MaxLevels = 3
	cfg.BlockSize = 4 << 10
	cfg.TableTargetSize = segment - 128<<10
	cfg.TableSlotSize = segment
	cfg.BlockCacheSize = 8 << 20
	cfg.ColdHints = hints
	return cfg
}

// runWAE2E measures the end-to-end cost of the log-on-log stack and what
// stream separation buys back. For each space-amplification target
// (dataset as a fraction of device capacity) and each hint policy, the
// run is fillrandom to the target, warm-up overwrite passes to reach GC
// steady state, one measured overwrite pass, then readwhilewriting:
//
//	app WA      = (WAL + flush + compaction bytes) / user KV bytes
//	FTL  WA     = (user + GC-moved + padded sectors) / user sectors
//	combined WA = app WA x FTL WA  (media bytes per user KV byte)
//
// The flash-native stream should win combined WA and steady-state
// overwrite throughput against the stacked baseline: its compaction
// already erases whole table extents, so the FTL has nothing to move.
func runWAE2E(o Options, w io.Writer) error {
	o = Defaults(o)
	blocks := 28
	utils := []float64{0.42, 0.46}
	warmPasses := 2
	if o.Quick {
		utils = []float64{0.46}
	}

	run := func(mode waE2EMode, util float64) (waE2ERow, error) {
		env, shards := newSimEnv(o, o.Seed, parallelShards)
		m := nand.DefaultConfig()
		m.PECycleLimit = 0
		m.WearLatencyFactor = 0
		dev, err := newDevice(env, shards, ocssd.Config{
			Geometry:  waE2EGeometry(blocks),
			Timing:    ocssd.DefaultTiming(),
			Media:     m,
			PageCache: true,
			Seed:      o.Seed,
		})
		if err != nil {
			return waE2ERow{}, err
		}
		ln := lightnvm.Register(fmt.Sprintf("wae2e-%s-u%02d", mode.name, int(util*100+0.5)), dev)
		row := waE2ERow{name: mode.name}
		var failure error
		env.Go("wae2e", func(p *sim.Proc) {
			k, err := pblk.New(p, ln, "pblk-wae2e", pblk.Config{
				ActivePUs: 2, OverProvision: 0.10, HintPolicy: mode.policy,
			})
			if err != nil {
				failure = err
				return
			}
			defer k.Stop(p)
			cfg := waE2EDBConfig(o, mode.hints, int64(k.ActivePUs())*k.EraseUnitBytes())
			db, err := lsmdb.Open(p, env, k, cfg)
			if err != nil {
				failure = err
				return
			}
			entries := int64(util*float64(k.Capacity())) / int64(cfg.KeySize+cfg.ValueSize)
			lsmdb.FillRandomN(p, db, 4, entries)
			for r := int64(1); r <= int64(warmPasses); r++ {
				lsmdb.OverwriteRandomN(p, db, 4, entries, r)
			}
			ftl0 := k.Stats
			walB := db.WALBytes
			flushB := db.FlushedBytes
			compB := db.CompactionWriteBytes
			inB := db.UserBytesIn
			stalls0 := db.WriteStalls
			res := lsmdb.OverwriteRandomN(p, db, 4, entries, int64(warmPasses)+1)
			appOut := (db.WALBytes - walB) + (db.FlushedBytes - flushB) + (db.CompactionWriteBytes - compB)
			appIn := db.UserBytesIn - inB
			user := k.Stats.UserWrites - ftl0.UserWrites
			moved := k.Stats.GCMovedSectors - ftl0.GCMovedSectors
			padded := k.Stats.PaddedSectors - ftl0.PaddedSectors
			if appIn > 0 {
				row.appWA = float64(appOut) / float64(appIn)
			}
			if user > 0 {
				row.ftlWA = float64(user+moved+padded) / float64(user)
			}
			row.comb = row.appWA * row.ftlWA
			row.wMBps = res.UserMBps
			row.stalls = db.WriteStalls - stalls0
			mix := lsmdb.ReadWhileWriting(p, db, 4, 2*o.Duration)
			row.p99 = mix.ReadLat.Percentile(99)
			if err := db.Close(p); err != nil {
				failure = err
			}
		})
		env.Run()
		if failure != nil {
			return row, fmt.Errorf("%s: %w", mode.name, failure)
		}
		return row, nil
	}

	for _, util := range utils {
		rows := make([]waE2ERow, 0, len(waE2EModes))
		for _, mode := range waE2EModes {
			r, err := run(mode, util)
			if err != nil {
				return err
			}
			rows = append(rows, r)
		}
		section(w, fmt.Sprintf("End-to-end WA, dataset %d%% of capacity: fillrandom + %d warm-up + 1 measured drive-write",
			int(util*100+0.5), warmPasses))
		t := &table{header: []string{"stack", "app WA", "FTL WA", "combined", "W MB/s", "read p99 ms", "stalls"}}
		for _, r := range rows {
			t.add(r.name, fmt.Sprintf("%.2f", r.appWA), fmt.Sprintf("%.2f", r.ftlWA),
				fmt.Sprintf("%.2f", r.comb), fmt.Sprintf("%.2f", r.wMBps), ms(r.p99), fmt.Sprint(r.stalls))
		}
		t.write(w)
		base, native := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "\nflash-native vs stacked: combined WA %.2f -> %.2f, overwrite %.2f -> %.2f MB/s\n",
			base.comb, native.comb, base.wMBps, native.wMBps)
	}
	fmt.Fprintln(w, "\nexpected shape: the stacked baseline pays twice — the engine's own compaction")
	fmt.Fprintln(w, "rewrites plus FTL GC untangling WAL laps from table extents in shared blocks.")
	fmt.Fprintln(w, "Cold-stream hints remove tables from the hot stream; the flash-native stream")
	fmt.Fprintln(w, "also erases whole table extents at compaction, leaving GC a pure erase.")
	return nil
}
