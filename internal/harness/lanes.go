package harness

import (
	"fmt"
	"io"

	"repro/internal/fio"
	"repro/internal/pblk"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "lanes",
		Title: "Write-lane scaling: QD32 write throughput vs active write PUs (sharded writers)",
		Run:   runLanes,
	})
}

// runLanes measures how pblk's sharded write datapath scales with the
// number of active write PUs (paper §4.2.1): each lane owns a dispatch
// shard of the ring buffer and its own writer process, so write bandwidth
// should grow with the active PU count until the channels saturate. The
// experiment sweeps ActivePUs at QD32 sequential writes and reports
// per-lane writer telemetry (queue depth high-water, semaphore stalls,
// padding) alongside throughput.
func runLanes(o Options, w io.Writer) error {
	o = Defaults(o)
	env, dev, ln, err := newOCSSD(o)
	if err != nil {
		return err
	}
	total := dev.Geometry().TotalPUs()
	activeSets := []int{1, 4, 16, total}
	if o.Quick {
		activeSets = []int{1, 16}
	}

	type row struct {
		active     int
		wMBps      float64
		units      int64 // write units submitted during the window
		stalls     int64 // writer blocked on the per-PU semaphore
		peak       int   // max queued+retried sectors on any lane
		padded     int64
		minU, maxU int64 // per-lane unit spread (balance check)
	}
	var rows []row

	env.Go("lanes", func(p *sim.Proc) {
		k, err := newPblk(p, ln, activeSets[0])
		if err != nil {
			panic(err)
		}
		defer k.Stop(p)
		span := alignDown(k.Capacity()/4, 256<<10)
		for _, act := range activeSets {
			if act > total {
				continue
			}
			if k.ActivePUs() != act {
				if err := k.SetActivePUs(p, act); err != nil {
					panic(err)
				}
			}
			// Reset the garbage left by the previous point so every
			// active-PU count starts from the same free-space state.
			if err := k.Trim(p, 0, span); err != nil {
				panic(err)
			}
			job := fio.Job{
				Name: fmt.Sprintf("lanes-%d", act), Pattern: fio.SeqWrite,
				BS: 64 << 10, QD: 32, Size: span, Seed: o.Seed,
			}
			// Warm the ring buffer to steady state so the measured rate
			// reflects media drain through the lanes, not buffered acks.
			warm := job
			warm.Runtime = o.Duration / 2
			mustRun(p, k, warm)
			base := laneTotals(k.LaneStats())
			job.Runtime = o.Duration
			res := mustRun(p, k, job)
			ls := k.LaneStats()
			after := laneTotals(ls)
			r := row{
				active: act,
				wMBps:  res.WriteMBps(),
				units:  after.units - base.units,
				stalls: after.stalls - base.stalls,
				padded: after.padded - base.padded,
				minU:   1 << 62,
			}
			for _, s := range ls {
				if s.PeakDepth > r.peak {
					r.peak = s.PeakDepth
				}
				if s.UnitsWritten < r.minU {
					r.minU = s.UnitsWritten
				}
				if s.UnitsWritten > r.maxU {
					r.maxU = s.UnitsWritten
				}
			}
			rows = append(rows, r)
		}
	})
	env.Run()

	section(w, "Write-lane scaling at QD32 (64K sequential writes)")
	t := &table{header: []string{"active PUs", "W MB/s", "units", "sem stalls", "peak lane depth", "padded", "units/lane min..max"}}
	for _, r := range rows {
		t.add(fmt.Sprint(r.active), mb(r.wMBps), fmt.Sprint(r.units), fmt.Sprint(r.stalls),
			fmt.Sprint(r.peak), fmt.Sprint(r.padded), fmt.Sprintf("%d..%d", r.minU, r.maxU))
	}
	t.write(w)
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		fmt.Fprintf(w, "\nscaling: %d lanes -> %d lanes = %.1fx write throughput\n",
			first.active, last.active, last.wMBps/first.wMBps)
	}
	fmt.Fprintln(w, "expected shape: throughput grows with active PUs (each lane drains its own")
	fmt.Fprintln(w, "shard of the ring buffer); per-lane unit counts stay balanced round-robin.")
	return nil
}

type laneTotal struct {
	units, stalls, padded int64
}

func laneTotals(ls []pblk.LaneStat) laneTotal {
	var t laneTotal
	for _, s := range ls {
		t.units += s.UnitsWritten
		t.stalls += s.SemStalls
		t.padded += s.Padded
	}
	return t
}
