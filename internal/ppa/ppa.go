// Package ppa implements the Physical Page Address I/O interface's
// hierarchical address space (paper §3).
//
// A PPA is a 64-bit value whose bit fields identify, from most to least
// significant: channel, parallel unit (PU), plane, block, page, and sector.
// Each device defines its own field widths based on its geometry; because
// widths are powers of two while geometry counts need not be, the address
// space may contain holes (invalid addresses), which the device rejects.
package ppa

import (
	"fmt"
	"math/bits"
)

// Geometry describes the dimensions of a device's PPA address space
// (paper §3.2, characteristic 1) plus the media quantization constants.
type Geometry struct {
	Channels       int // channels on the device
	PUsPerChannel  int // parallel units (LUNs) per channel
	PlanesPerPU    int // planes per PU
	BlocksPerPlane int
	PagesPerBlock  int
	SectorsPerPage int
	SectorSize     int // bytes; the minimum unit of ECC and host I/O
	OOBPerPage     int // user-accessible out-of-band bytes per flash page
}

// Validate checks that every dimension is positive.
func (g Geometry) Validate() error {
	type dim struct {
		name string
		v    int
	}
	for _, d := range []dim{
		{"Channels", g.Channels}, {"PUsPerChannel", g.PUsPerChannel},
		{"PlanesPerPU", g.PlanesPerPU}, {"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock}, {"SectorsPerPage", g.SectorsPerPage},
		{"SectorSize", g.SectorSize},
	} {
		if d.v <= 0 {
			return fmt.Errorf("ppa: geometry %s must be positive, got %d", d.name, d.v)
		}
	}
	if g.OOBPerPage < 0 {
		return fmt.Errorf("ppa: geometry OOBPerPage must be non-negative, got %d", g.OOBPerPage)
	}
	return nil
}

// TotalPUs returns the number of parallel units on the device.
func (g Geometry) TotalPUs() int { return g.Channels * g.PUsPerChannel }

// PageSize returns the flash page size in bytes (excluding OOB).
func (g Geometry) PageSize() int { return g.SectorsPerPage * g.SectorSize }

// BlockBytes returns the data capacity of one block.
func (g Geometry) BlockBytes() int64 {
	return int64(g.PagesPerBlock) * int64(g.PageSize())
}

// PUBytes returns the data capacity of one PU across all its planes.
func (g Geometry) PUBytes() int64 {
	return int64(g.PlanesPerPU) * int64(g.BlocksPerPlane) * g.BlockBytes()
}

// TotalBytes returns the raw data capacity of the device.
func (g Geometry) TotalBytes() int64 { return int64(g.TotalPUs()) * g.PUBytes() }

// TotalSectors returns the number of addressable sectors on the device.
func (g Geometry) TotalSectors() int64 { return g.TotalBytes() / int64(g.SectorSize) }

// BlocksPerPU returns blocks per PU across all planes.
func (g Geometry) BlocksPerPU() int { return g.PlanesPerPU * g.BlocksPerPlane }

func (g Geometry) String() string {
	return fmt.Sprintf("geometry{ch=%d pu/ch=%d planes=%d blk/plane=%d pg/blk=%d sec/pg=%d secsz=%d oob=%d cap=%.1fGB}",
		g.Channels, g.PUsPerChannel, g.PlanesPerPU, g.BlocksPerPlane,
		g.PagesPerBlock, g.SectorsPerPage, g.SectorSize, g.OOBPerPage,
		float64(g.TotalBytes())/1e9)
}

// Addr identifies one sector on the device in decomposed form. The packed
// 64-bit wire representation is produced by Format.Encode.
type Addr struct {
	Ch     int
	PU     int
	Plane  int
	Block  int
	Page   int
	Sector int
}

func (a Addr) String() string {
	return fmt.Sprintf("ppa{ch=%d pu=%d pl=%d blk=%d pg=%d sec=%d}",
		a.Ch, a.PU, a.Plane, a.Block, a.Page, a.Sector)
}

// Format defines the bit layout of packed PPAs for a device, derived from
// its geometry. Fields are packed LSB-first in the order sector, page,
// block, plane, PU, channel (paper Figure 2).
type Format struct {
	SectorBits, PageBits, BlockBits, PlaneBits, PUBits, ChBits uint
	geo                                                        Geometry
}

func bitsFor(n int) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len(uint(n - 1)))
}

// NewFormat derives the packed-address layout for g.
func NewFormat(g Geometry) (Format, error) {
	if err := g.Validate(); err != nil {
		return Format{}, err
	}
	f := Format{
		SectorBits: bitsFor(g.SectorsPerPage),
		PageBits:   bitsFor(g.PagesPerBlock),
		BlockBits:  bitsFor(g.BlocksPerPlane),
		PlaneBits:  bitsFor(g.PlanesPerPU),
		PUBits:     bitsFor(g.PUsPerChannel),
		ChBits:     bitsFor(g.Channels),
		geo:        g,
	}
	if total := f.SectorBits + f.PageBits + f.BlockBits + f.PlaneBits + f.PUBits + f.ChBits; total > 64 {
		return Format{}, fmt.Errorf("ppa: format needs %d bits, exceeds 64", total)
	}
	return f, nil
}

// Geometry returns the geometry the format was derived from.
func (f Format) Geometry() Geometry { return f.geo }

// Encode packs a into the device's 64-bit PPA representation. Encode does
// not validate field ranges; use Valid for that.
func (f Format) Encode(a Addr) uint64 {
	v := uint64(a.Sector)
	shift := f.SectorBits
	v |= uint64(a.Page) << shift
	shift += f.PageBits
	v |= uint64(a.Block) << shift
	shift += f.BlockBits
	v |= uint64(a.Plane) << shift
	shift += f.PlaneBits
	v |= uint64(a.PU) << shift
	shift += f.PUBits
	v |= uint64(a.Ch) << shift
	return v
}

// Decode unpacks a 64-bit PPA into its components.
func (f Format) Decode(v uint64) Addr {
	mask := func(b uint) uint64 { return (uint64(1) << b) - 1 }
	a := Addr{}
	a.Sector = int(v & mask(f.SectorBits))
	v >>= f.SectorBits
	a.Page = int(v & mask(f.PageBits))
	v >>= f.PageBits
	a.Block = int(v & mask(f.BlockBits))
	v >>= f.BlockBits
	a.Plane = int(v & mask(f.PlaneBits))
	v >>= f.PlaneBits
	a.PU = int(v & mask(f.PUBits))
	v >>= f.PUBits
	a.Ch = int(v)
	return a
}

// Valid reports whether a addresses a real location: addresses in the holes
// of the power-of-two layout (paper §3.1) are invalid.
func (f Format) Valid(a Addr) bool {
	g := f.geo
	return a.Ch >= 0 && a.Ch < g.Channels &&
		a.PU >= 0 && a.PU < g.PUsPerChannel &&
		a.Plane >= 0 && a.Plane < g.PlanesPerPU &&
		a.Block >= 0 && a.Block < g.BlocksPerPlane &&
		a.Page >= 0 && a.Page < g.PagesPerBlock &&
		a.Sector >= 0 && a.Sector < g.SectorsPerPage
}

// GlobalPU returns the device-wide PU index of a (channel-major), matching
// the paper's PU numbering where PU0..PU7 live on channel 0.
func (f Format) GlobalPU(a Addr) int { return a.Ch*f.geo.PUsPerChannel + a.PU }

// PUAddr returns the channel and in-channel PU for a device-wide PU index.
func (f Format) PUAddr(globalPU int) (ch, pu int) {
	return globalPU / f.geo.PUsPerChannel, globalPU % f.geo.PUsPerChannel
}

// SectorIndex flattens a into a dense 0-based sector index with no holes,
// ordered ch, pu, plane, block, page, sector. Useful for dense host-side
// tables over the physical space.
func (f Format) SectorIndex(a Addr) int64 {
	g := f.geo
	idx := int64(a.Ch)
	idx = idx*int64(g.PUsPerChannel) + int64(a.PU)
	idx = idx*int64(g.PlanesPerPU) + int64(a.Plane)
	idx = idx*int64(g.BlocksPerPlane) + int64(a.Block)
	idx = idx*int64(g.PagesPerBlock) + int64(a.Page)
	idx = idx*int64(g.SectorsPerPage) + int64(a.Sector)
	return idx
}

// FromSectorIndex inverts SectorIndex.
func (f Format) FromSectorIndex(idx int64) Addr {
	g := f.geo
	a := Addr{}
	a.Sector = int(idx % int64(g.SectorsPerPage))
	idx /= int64(g.SectorsPerPage)
	a.Page = int(idx % int64(g.PagesPerBlock))
	idx /= int64(g.PagesPerBlock)
	a.Block = int(idx % int64(g.BlocksPerPlane))
	idx /= int64(g.BlocksPerPlane)
	a.Plane = int(idx % int64(g.PlanesPerPU))
	idx /= int64(g.PlanesPerPU)
	a.PU = int(idx % int64(g.PUsPerChannel))
	idx /= int64(g.PUsPerChannel)
	a.Ch = int(idx)
	return a
}

// BlockID identifies a physical block (all pages within one plane's block).
type BlockID struct {
	Ch, PU, Plane, Block int
}

// BlockOf returns the block containing a.
func (a Addr) BlockOf() BlockID {
	return BlockID{Ch: a.Ch, PU: a.PU, Plane: a.Plane, Block: a.Block}
}

// Addr returns the address of sector (page, sector) within block b.
func (b BlockID) Addr(page, sector int) Addr {
	return Addr{Ch: b.Ch, PU: b.PU, Plane: b.Plane, Block: b.Block, Page: page, Sector: sector}
}

func (b BlockID) String() string {
	return fmt.Sprintf("blk{ch=%d pu=%d pl=%d blk=%d}", b.Ch, b.PU, b.Plane, b.Block)
}

// BlockIndex flattens b into a dense device-wide block index ordered
// ch, pu, plane, block.
func (f Format) BlockIndex(b BlockID) int {
	g := f.geo
	idx := b.Ch
	idx = idx*g.PUsPerChannel + b.PU
	idx = idx*g.PlanesPerPU + b.Plane
	idx = idx*g.BlocksPerPlane + b.Block
	return idx
}

// FromBlockIndex inverts BlockIndex.
func (f Format) FromBlockIndex(idx int) BlockID {
	g := f.geo
	b := BlockID{}
	b.Block = idx % g.BlocksPerPlane
	idx /= g.BlocksPerPlane
	b.Plane = idx % g.PlanesPerPU
	idx /= g.PlanesPerPU
	b.PU = idx % g.PUsPerChannel
	idx /= g.PUsPerChannel
	b.Ch = idx
	return b
}

// TotalBlocks returns the number of physical blocks on the device.
func (g Geometry) TotalBlocks() int {
	return g.Channels * g.PUsPerChannel * g.PlanesPerPU * g.BlocksPerPlane
}
