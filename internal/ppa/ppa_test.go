package ppa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func westlake() Geometry {
	return Geometry{
		Channels: 16, PUsPerChannel: 8, PlanesPerPU: 4,
		BlocksPerPlane: 1067, PagesPerBlock: 256,
		SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := westlake().Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := westlake()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
	bad = westlake()
	bad.OOBPerPage = -1
	if bad.Validate() == nil {
		t.Fatal("negative OOB accepted")
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := westlake()
	if got := g.TotalPUs(); got != 128 {
		t.Fatalf("TotalPUs = %d, want 128", got)
	}
	if got := g.PageSize(); got != 16384 {
		t.Fatalf("PageSize = %d, want 16384", got)
	}
	// The paper's drive: 2 TB class.
	if tb := float64(g.TotalBytes()) / 1e12; tb < 2.0 || tb > 2.5 {
		t.Fatalf("capacity = %.2f TB, want ~2.2 TB", tb)
	}
	if g.TotalSectors()*int64(g.SectorSize) != g.TotalBytes() {
		t.Fatal("sector accounting inconsistent")
	}
	if g.TotalBlocks() != 16*8*4*1067 {
		t.Fatalf("TotalBlocks = %d", g.TotalBlocks())
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {1067, 11}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := int(bitsFor(c.n)); got != c.want {
			t.Errorf("bitsFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f, err := NewFormat(westlake())
	if err != nil {
		t.Fatal(err)
	}
	fn := func(ch, pu, pl, blk, pg, sec uint16) bool {
		g := westlake()
		a := Addr{
			Ch:     int(ch) % g.Channels,
			PU:     int(pu) % g.PUsPerChannel,
			Plane:  int(pl) % g.PlanesPerPU,
			Block:  int(blk) % g.BlocksPerPlane,
			Page:   int(pg) % g.PagesPerBlock,
			Sector: int(sec) % g.SectorsPerPage,
		}
		return f.Decode(f.Encode(a)) == a
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressHoles(t *testing.T) {
	// 1067 blocks need 11 bits; blocks 1067..2047 are holes (paper §3.1).
	f, err := NewFormat(westlake())
	if err != nil {
		t.Fatal(err)
	}
	if !f.Valid(Addr{Block: 1066}) {
		t.Fatal("block 1066 should be valid")
	}
	if f.Valid(Addr{Block: 1067}) {
		t.Fatal("block 1067 should be an address hole")
	}
	if f.Valid(Addr{Ch: 16}) {
		t.Fatal("channel 16 should be invalid")
	}
	if f.Valid(Addr{Sector: -1}) {
		t.Fatal("negative sector should be invalid")
	}
}

func TestSectorIndexRoundTrip(t *testing.T) {
	f, _ := NewFormat(westlake())
	rng := rand.New(rand.NewSource(7))
	g := westlake()
	for i := 0; i < 2000; i++ {
		a := Addr{
			Ch:     rng.Intn(g.Channels),
			PU:     rng.Intn(g.PUsPerChannel),
			Plane:  rng.Intn(g.PlanesPerPU),
			Block:  rng.Intn(g.BlocksPerPlane),
			Page:   rng.Intn(g.PagesPerBlock),
			Sector: rng.Intn(g.SectorsPerPage),
		}
		idx := f.SectorIndex(a)
		if idx < 0 || idx >= g.TotalSectors() {
			t.Fatalf("index %d out of range for %v", idx, a)
		}
		if back := f.FromSectorIndex(idx); back != a {
			t.Fatalf("FromSectorIndex(%d) = %v, want %v", idx, back, a)
		}
	}
}

func TestSectorIndexDense(t *testing.T) {
	g := Geometry{Channels: 2, PUsPerChannel: 2, PlanesPerPU: 2, BlocksPerPlane: 3,
		PagesPerBlock: 4, SectorsPerPage: 2, SectorSize: 4096}
	f, _ := NewFormat(g)
	seen := make(map[int64]bool)
	for ch := 0; ch < g.Channels; ch++ {
		for pu := 0; pu < g.PUsPerChannel; pu++ {
			for pl := 0; pl < g.PlanesPerPU; pl++ {
				for b := 0; b < g.BlocksPerPlane; b++ {
					for pg := 0; pg < g.PagesPerBlock; pg++ {
						for s := 0; s < g.SectorsPerPage; s++ {
							idx := f.SectorIndex(Addr{ch, pu, pl, b, pg, s})
							if seen[idx] {
								t.Fatalf("duplicate index %d", idx)
							}
							seen[idx] = true
						}
					}
				}
			}
		}
	}
	if int64(len(seen)) != g.TotalSectors() {
		t.Fatalf("indexed %d sectors, want %d", len(seen), g.TotalSectors())
	}
}

func TestGlobalPU(t *testing.T) {
	f, _ := NewFormat(westlake())
	a := Addr{Ch: 3, PU: 5}
	if got := f.GlobalPU(a); got != 3*8+5 {
		t.Fatalf("GlobalPU = %d, want 29", got)
	}
	ch, pu := f.PUAddr(29)
	if ch != 3 || pu != 5 {
		t.Fatalf("PUAddr(29) = (%d,%d), want (3,5)", ch, pu)
	}
}

func TestBlockIndexRoundTrip(t *testing.T) {
	f, _ := NewFormat(westlake())
	g := westlake()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		b := BlockID{
			Ch: rng.Intn(g.Channels), PU: rng.Intn(g.PUsPerChannel),
			Plane: rng.Intn(g.PlanesPerPU), Block: rng.Intn(g.BlocksPerPlane),
		}
		if back := f.FromBlockIndex(f.BlockIndex(b)); back != b {
			t.Fatalf("block index round trip failed: %v -> %v", b, back)
		}
	}
}

func TestBlockOfAndAddr(t *testing.T) {
	a := Addr{Ch: 1, PU: 2, Plane: 3, Block: 4, Page: 5, Sector: 6}
	b := a.BlockOf()
	if b != (BlockID{Ch: 1, PU: 2, Plane: 3, Block: 4}) {
		t.Fatalf("BlockOf = %v", b)
	}
	a2 := b.Addr(9, 1)
	if a2.Page != 9 || a2.Sector != 1 || a2.Ch != 1 {
		t.Fatalf("BlockID.Addr = %v", a2)
	}
}

func TestFormatTooWide(t *testing.T) {
	g := westlake()
	g.BlocksPerPlane = 1 << 30
	g.PagesPerBlock = 1 << 30
	g.Channels = 1 << 10
	if _, err := NewFormat(g); err == nil {
		t.Fatal("format exceeding 64 bits accepted")
	}
}

func TestEncodePacksHierarchically(t *testing.T) {
	// A higher channel must always encode to a larger value than any
	// address on a lower channel (MSB ordering, paper Figure 2).
	f, _ := NewFormat(westlake())
	lo := f.Encode(Addr{Ch: 2, PU: 7, Plane: 3, Block: 1066, Page: 255, Sector: 3})
	hi := f.Encode(Addr{Ch: 3})
	if lo >= hi {
		t.Fatalf("channel ordering broken: ch2-max=%d >= ch3-min=%d", lo, hi)
	}
}
