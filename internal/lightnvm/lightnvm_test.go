package lightnvm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

func newDevice(t *testing.T) (*sim.Env, *Device) {
	t.Helper()
	env := sim.NewEnv(1)
	m := nand.DefaultConfig()
	dev, err := ocssd.New(env, ocssd.Config{
		Geometry: ppa.Geometry{
			Channels: 2, PUsPerChannel: 2, PlanesPerPU: 2,
			BlocksPerPlane: 4, PagesPerBlock: 8,
			SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
		},
		Timing: ocssd.DefaultTiming(),
		Media:  m,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, Register("nvme0n1", dev)
}

type fakeTarget struct {
	name    string
	stopped bool
}

func (f *fakeTarget) TargetName() string     { return f.name }
func (f *fakeTarget) Stop(p *sim.Proc) error { f.stopped = true; return nil }

func init() {
	RegisterTargetType("fake", func(p *sim.Proc, dev *Device, name string, cfg any) (Target, error) {
		if cfg == "fail" {
			return nil, errors.New("nope")
		}
		return &fakeTarget{name: name}, nil
	})
	// slowfake yields during construction, like pblk running its recovery
	// scan; it exposes the create/create race window.
	RegisterTargetType("slowfake", func(p *sim.Proc, dev *Device, name string, cfg any) (Target, error) {
		p.Sleep(time.Millisecond)
		if cfg == "fail" {
			return nil, errors.New("nope")
		}
		return &fakeTarget{name: name}, nil
	})
}

func TestGeometryExposed(t *testing.T) {
	_, d := newDevice(t)
	if d.Name() != "nvme0n1" {
		t.Fatal("name")
	}
	if d.Geometry().Channels != 2 {
		t.Fatal("geometry not exposed")
	}
	if d.Identify().MaxVectorLen != ocssd.MaxVectorLen {
		t.Fatal("identify not exposed")
	}
	if d.Raw() == nil || d.Env() == nil {
		t.Fatal("raw accessors")
	}
}

func TestTargetTypeRegistry(t *testing.T) {
	found := false
	for _, n := range TargetTypes() {
		if n == "fake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fake target not listed: %v", TargetTypes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterTargetType("fake", nil)
}

func TestTargetLifecycle(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		tgt, err := d.CreateTarget(p, "fake", "inst0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Targets(); len(got) != 1 || got[0] != "inst0" {
			t.Fatalf("targets = %v", got)
		}
		if _, err := d.CreateTarget(p, "fake", "inst0", nil); err == nil {
			t.Fatal("duplicate instance accepted")
		}
		if _, err := d.CreateTarget(p, "missing", "x", nil); err == nil {
			t.Fatal("unknown type accepted")
		}
		if _, err := d.CreateTarget(p, "fake", "bad", "fail"); err == nil {
			t.Fatal("factory error swallowed")
		}
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Fatal(err)
		}
		if !tgt.(*fakeTarget).stopped {
			t.Fatal("Stop not called on removal")
		}
		if err := d.RemoveTarget(p, "inst0"); err == nil {
			t.Fatal("double remove accepted")
		}
	})
	env.Run()
}

func TestConcurrentCreateSameName(t *testing.T) {
	// Two simultaneous creates of one instance name, both yielding during
	// construction: exactly one may win; the loser must fail the duplicate
	// check instead of silently replacing the winner in the registry.
	env, d := newDevice(t)
	var targets []Target
	var errs []error
	for i := 0; i < 2; i++ {
		env.Go("creator", func(p *sim.Proc) {
			tgt, err := d.CreateTarget(p, "slowfake", "inst0", nil)
			if err != nil {
				errs = append(errs, err)
				return
			}
			targets = append(targets, tgt)
		})
	}
	env.Run()
	if len(targets) != 1 || len(errs) != 1 {
		t.Fatalf("wins=%d errs=%d, want exactly one of each", len(targets), len(errs))
	}
	if got := d.Targets(); len(got) != 1 || got[0] != "inst0" {
		t.Fatalf("targets = %v", got)
	}
	env.Go("check", func(p *sim.Proc) {
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Errorf("remove winner: %v", err)
		}
	})
	env.Run()
	if !targets[0].(*fakeTarget).stopped {
		t.Fatal("winner not stopped on removal")
	}
}

func TestCreateFailureReleasesReservation(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "slowfake", "inst0", "fail"); err == nil {
			t.Error("factory error swallowed")
		}
		if got := d.Targets(); len(got) != 0 {
			t.Errorf("failed create left registry entry: %v", got)
		}
		// The name must be reusable after the failed create.
		if _, err := d.CreateTarget(p, "slowfake", "inst0", nil); err != nil {
			t.Errorf("recreate after failure: %v", err)
		}
	})
	env.Run()
}

func TestRemoveDuringCreateRejected(t *testing.T) {
	env, d := newDevice(t)
	created := env.NewEvent()
	env.Go("creator", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "slowfake", "inst0", nil); err != nil {
			t.Errorf("create: %v", err)
		}
		created.Signal()
	})
	env.Go("remover", func(p *sim.Proc) {
		// Runs while the creator is still inside construction.
		if err := d.RemoveTarget(p, "inst0"); err == nil {
			t.Error("remove of a half-created target accepted")
		}
		p.Wait(created)
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Errorf("remove after creation: %v", err)
		}
	})
	env.Run()
}
