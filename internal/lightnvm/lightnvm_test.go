package lightnvm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

func newDevice(t *testing.T) (*sim.Env, *Device) {
	t.Helper()
	env := sim.NewEnv(1)
	m := nand.DefaultConfig()
	dev, err := ocssd.New(env, ocssd.Config{
		Geometry: ppa.Geometry{
			Channels: 2, PUsPerChannel: 2, PlanesPerPU: 2,
			BlocksPerPlane: 4, PagesPerBlock: 8,
			SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
		},
		Timing: ocssd.DefaultTiming(),
		Media:  m,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, Register("nvme0n1", dev)
}

type fakeTarget struct {
	name    string
	view    *MediaView
	stopped bool
}

func (f *fakeTarget) TargetName() string     { return f.name }
func (f *fakeTarget) Stop(p *sim.Proc) error { f.stopped = true; return nil }

func init() {
	RegisterTargetType("fake", func(p *sim.Proc, view *MediaView, name string, cfg any) (Target, error) {
		if cfg == "fail" {
			return nil, errors.New("nope")
		}
		return &fakeTarget{name: name, view: view}, nil
	})
	// slowfake yields during construction, like pblk running its recovery
	// scan; it exposes the create/create race window.
	RegisterTargetType("slowfake", func(p *sim.Proc, view *MediaView, name string, cfg any) (Target, error) {
		p.Sleep(time.Millisecond)
		if cfg == "fail" {
			return nil, errors.New("nope")
		}
		return &fakeTarget{name: name, view: view}, nil
	})
}

func TestGeometryExposed(t *testing.T) {
	_, d := newDevice(t)
	if d.Name() != "nvme0n1" {
		t.Fatal("name")
	}
	if d.Geometry().Channels != 2 {
		t.Fatal("geometry not exposed")
	}
	if d.Identify().MaxVectorLen != ocssd.MaxVectorLen {
		t.Fatal("identify not exposed")
	}
	if d.Raw() == nil || d.Env() == nil {
		t.Fatal("raw accessors")
	}
}

func TestTargetTypeRegistry(t *testing.T) {
	found := false
	for _, n := range TargetTypes() {
		if n == "fake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fake target not listed: %v", TargetTypes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterTargetType("fake", nil)
}

func TestTargetLifecycle(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		tgt, err := d.CreateTarget(p, "fake", "inst0", PURange{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Targets(); len(got) != 1 || got[0] != "inst0" {
			t.Fatalf("targets = %v", got)
		}
		if _, err := d.CreateTarget(p, "fake", "inst0", PURange{}, nil); err == nil {
			t.Fatal("duplicate instance accepted")
		}
		if _, err := d.CreateTarget(p, "missing", "x", PURange{}, nil); err == nil {
			t.Fatal("unknown type accepted")
		}
		if _, err := d.CreateTarget(p, "fake", "bad", PURange{}, "fail"); err == nil {
			t.Fatal("factory error swallowed")
		}
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Fatal(err)
		}
		if !tgt.(*fakeTarget).stopped {
			t.Fatal("Stop not called on removal")
		}
		if err := d.RemoveTarget(p, "inst0"); err == nil {
			t.Fatal("double remove accepted")
		}
	})
	env.Run()
}

func TestConcurrentCreateSameName(t *testing.T) {
	// Two simultaneous creates of one instance name, both yielding during
	// construction: exactly one may win; the loser must fail the duplicate
	// check instead of silently replacing the winner in the registry.
	env, d := newDevice(t)
	var targets []Target
	var errs []error
	for i := 0; i < 2; i++ {
		env.Go("creator", func(p *sim.Proc) {
			tgt, err := d.CreateTarget(p, "slowfake", "inst0", PURange{}, nil)
			if err != nil {
				errs = append(errs, err)
				return
			}
			targets = append(targets, tgt)
		})
	}
	env.Run()
	if len(targets) != 1 || len(errs) != 1 {
		t.Fatalf("wins=%d errs=%d, want exactly one of each", len(targets), len(errs))
	}
	if got := d.Targets(); len(got) != 1 || got[0] != "inst0" {
		t.Fatalf("targets = %v", got)
	}
	env.Go("check", func(p *sim.Proc) {
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Errorf("remove winner: %v", err)
		}
	})
	env.Run()
	if !targets[0].(*fakeTarget).stopped {
		t.Fatal("winner not stopped on removal")
	}
}

func TestCreateFailureReleasesReservation(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "slowfake", "inst0", PURange{}, "fail"); err == nil {
			t.Error("factory error swallowed")
		}
		if got := d.Targets(); len(got) != 0 {
			t.Errorf("failed create left registry entry: %v", got)
		}
		// The name must be reusable after the failed create.
		if _, err := d.CreateTarget(p, "slowfake", "inst0", PURange{}, nil); err != nil {
			t.Errorf("recreate after failure: %v", err)
		}
	})
	env.Run()
}

func TestRemoveDuringCreateRejected(t *testing.T) {
	env, d := newDevice(t)
	created := env.NewEvent()
	env.Go("creator", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "slowfake", "inst0", PURange{}, nil); err != nil {
			t.Errorf("create: %v", err)
		}
		created.Signal()
	})
	env.Go("remover", func(p *sim.Proc) {
		// Runs while the creator is still inside construction.
		if err := d.RemoveTarget(p, "inst0"); err == nil {
			t.Error("remove of a half-created target accepted")
		}
		p.Wait(created)
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Errorf("remove after creation: %v", err)
		}
	})
	env.Run()
}

func TestPartitionedCreateAndOverlap(t *testing.T) {
	env, d := newDevice(t) // 4 PUs total
	env.Go("main", func(p *sim.Proc) {
		a, err := d.CreateTarget(p, "fake", "a", PURange{0, 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r, ok := d.TargetRange("a"); !ok || r != (PURange{0, 2}) {
			t.Fatalf("TargetRange(a) = %v,%v", r, ok)
		}
		// Any overlap with a's range must be rejected.
		for _, r := range []PURange{{0, 1}, {1, 3}, {0, 4}, {}} {
			if _, err := d.CreateTarget(p, "fake", "b", r, nil); err == nil {
				t.Fatalf("overlapping range %v accepted", r)
			}
		}
		// Invalid ranges are rejected outright.
		for _, r := range []PURange{{-1, 2}, {2, 2}, {3, 2}, {2, 5}} {
			if _, err := d.CreateTarget(p, "fake", "b", r, nil); err == nil {
				t.Fatalf("invalid range %v accepted", r)
			}
		}
		// The disjoint remainder works, and both coexist.
		b, err := d.CreateTarget(p, "fake", "b", PURange{2, 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Targets(); len(got) != 2 {
			t.Fatalf("targets = %v", got)
		}
		av, bv := a.(*fakeTarget).view, b.(*fakeTarget).view
		if av.PUs() != 2 || av.GlobalPU(1) != 1 || bv.PUs() != 2 || bv.GlobalPU(0) != 2 {
			t.Fatalf("view translation wrong: a=%v b=%v", av.Range(), bv.Range())
		}
		// Removing a releases its PUs for a new tenant.
		if err := d.RemoveTarget(p, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := d.CreateTarget(p, "c", "c", PURange{0, 2}, nil); err == nil {
			t.Fatal("unknown type accepted")
		}
		if _, err := d.CreateTarget(p, "fake", "c", PURange{0, 2}, nil); err != nil {
			t.Fatalf("range not released on remove: %v", err)
		}
	})
	env.Run()
}

func TestPartitionTablePersistsAcrossRestart(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "fake", "a", PURange{1, 3}, nil); err != nil {
			t.Fatal(err)
		}
		if err := d.RemoveTarget(p, "a"); err != nil {
			t.Fatal(err)
		}
		// Re-creating "a" with a zero range restores its recorded
		// partition instead of claiming the whole device.
		a2, err := d.CreateTarget(p, "fake", "a", PURange{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r := a2.(*fakeTarget).view.Range(); r != (PURange{1, 3}) {
			t.Fatalf("restarted target got range %v, want [1,3)", r)
		}
		// The rest of the device is still free for others.
		if _, err := d.CreateTarget(p, "fake", "b", PURange{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
		parts := d.Partitions()
		if len(parts) != 2 || parts[0].Name != "b" || parts[1].Name != "a" || !parts[1].Active {
			t.Fatalf("partition table = %+v", parts)
		}
		// An explicit new range overrides and re-records.
		if err := d.RemoveTarget(p, "a"); err != nil {
			t.Fatal(err)
		}
		a3, err := d.CreateTarget(p, "fake", "a", PURange{3, 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if r := a3.(*fakeTarget).view.Range(); r != (PURange{3, 4}) {
			t.Fatalf("explicit re-range got %v", r)
		}
	})
	env.Run()
}

func TestCreateFailureReleasesPUs(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "slowfake", "a", PURange{0, 2}, "fail"); err == nil {
			t.Fatal("factory error swallowed")
		}
		// The failed create must not leave PUs owned or a partition record
		// that would shrink an unrelated target's zero-range create.
		if _, err := d.CreateTarget(p, "fake", "b", PURange{0, 2}, nil); err != nil {
			t.Fatalf("PUs not released after failed create: %v", err)
		}
	})
	env.Run()
}

func TestMediaViewSubmitRejectsOutOfPartition(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		v, err := d.View("a", PURange{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		// PU 2 lives at ch 1, pu 0 on this 2x2 device: outside the view.
		ch, pu := d.Raw().Format().PUAddr(2)
		bad := ppa.Addr{Ch: ch, PU: pu}
		c := v.Do(p, &ocssd.Vector{Op: ocssd.OpRead, Addrs: []ppa.Addr{bad}})
		if !c.Failed() || !errors.Is(c.Errs[0], ErrOutOfPartition) {
			t.Fatalf("out-of-partition read: %+v", c.Errs)
		}
		if !v.Contains(ppa.Addr{}) || v.Contains(bad) {
			t.Fatal("Contains wrong")
		}
		// In-partition I/O passes through.
		good := v.Do(p, &ocssd.Vector{Op: ocssd.OpErase, Addrs: []ppa.Addr{{}}})
		if good.Failed() {
			t.Fatalf("in-partition erase failed: %v", good.FirstErr())
		}
		if v.RelativePU(v.GlobalPU(1)) != 1 {
			t.Fatal("PU translation not inverse")
		}
		if v.Die(0) != d.Raw().Die(0) {
			t.Fatal("Die translation wrong")
		}
	})
	env.Run()
}

func TestOwnerGuardPanicsOnForeignSubmit(t *testing.T) {
	env, d := newDevice(t)
	d.EnableOwnerGuard()
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "fake", "a", PURange{0, 2}, nil); err != nil {
			t.Fatal(err)
		}
		// A raw (untagged) submit onto a guarded PU must fail loudly.
		defer func() {
			if recover() == nil {
				t.Error("foreign submit on guarded PU did not panic")
			}
		}()
		d.Raw().Do(p, &ocssd.Vector{Op: ocssd.OpRead, Addrs: []ppa.Addr{{}}})
	})
	env.Run()
}

func TestOwnerGuardClearedOnRemove(t *testing.T) {
	env, d := newDevice(t)
	d.EnableOwnerGuard()
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "fake", "a", PURange{0, 2}, nil); err != nil {
			t.Fatal(err)
		}
		if err := d.RemoveTarget(p, "a"); err != nil {
			t.Fatal(err)
		}
		// After removal the PUs are unguarded again.
		c := d.Raw().Do(p, &ocssd.Vector{Op: ocssd.OpRead, Addrs: []ppa.Addr{{}}})
		_ = c
	})
	env.Run()
}

// slowStopTarget yields inside Stop, like pblk draining GC and lane
// writers with real device I/O.
type slowStopTarget struct {
	name    string
	stopped bool
}

func (f *slowStopTarget) TargetName() string { return f.name }
func (f *slowStopTarget) Stop(p *sim.Proc) error {
	p.Sleep(time.Millisecond)
	f.stopped = true
	return nil
}

func init() {
	RegisterTargetType("slowstop", func(p *sim.Proc, view *MediaView, name string, cfg any) (Target, error) {
		return &slowStopTarget{name: name}, nil
	})
}

func TestRemoveHoldsPUsUntilStopCompletes(t *testing.T) {
	// RemoveTarget drops the name immediately but must keep the PU range
	// reserved while Stop is still quiescing the target (it performs
	// device I/O): a new tenant taking the range mid-Stop would let two
	// FTLs program the same blocks.
	env, d := newDevice(t)
	var tgt Target
	env.Go("setup", func(p *sim.Proc) {
		var err error
		tgt, err = d.CreateTarget(p, "slowstop", "old", PURange{0, 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
	})
	env.Run()
	removed := env.NewEvent()
	env.Go("remover", func(p *sim.Proc) {
		if err := d.RemoveTarget(p, "old"); err != nil {
			t.Errorf("remove: %v", err)
		}
		removed.Signal()
	})
	env.Go("newcomer", func(p *sim.Proc) {
		// Interleaves while "old" is still inside Stop: the range must be
		// refused until Stop returns.
		if _, err := d.CreateTarget(p, "fake", "new", PURange{0, 2}, nil); err == nil {
			if !tgt.(*slowStopTarget).stopped {
				t.Error("range handed to a new tenant while the old target was still stopping")
			}
			return
		}
		p.Wait(removed)
		if !tgt.(*slowStopTarget).stopped {
			t.Error("RemoveTarget returned before Stop completed")
		}
		if _, err := d.CreateTarget(p, "fake", "new", PURange{0, 2}, nil); err != nil {
			t.Errorf("range not released after Stop: %v", err)
		}
	})
	env.Run()
}

func TestViewRejectsReservedPUs(t *testing.T) {
	// An untracked View (e.g. a direct full-device pblk.New) must not be
	// able to span a live tenant's PUs: its recovery scan would reclaim
	// the tenant's blocks as foreign metadata.
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		if _, err := d.CreateTarget(p, "fake", "a", PURange{0, 2}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := d.View("x", PURange{}); err == nil {
			t.Error("full-device view granted over a live tenant's PUs")
		}
		if _, err := d.View("x", PURange{1, 3}); err == nil {
			t.Error("overlapping view granted")
		}
		if _, err := d.View("x", PURange{2, 4}); err != nil {
			t.Errorf("disjoint view refused: %v", err)
		}
		if err := d.RemoveTarget(p, "a"); err != nil {
			t.Fatal(err)
		}
		if _, err := d.View("x", PURange{}); err != nil {
			t.Errorf("full-device view refused after removal: %v", err)
		}
	})
	env.Run()
}

// TestDeviceRegistry covers the subsystem-level device enumeration the
// volume manager and inspection tooling rely on: registered devices are
// listed sorted by name, lookups return the same handle, and
// re-registering a name replaces the entry.
func TestDeviceRegistry(t *testing.T) {
	_, a := newDevice(t) // registers "nvme0n1"
	if got, ok := Lookup("nvme0n1"); !ok || got != a {
		t.Fatalf("Lookup(nvme0n1) = %v, %v; want the registered handle", got, ok)
	}
	env := sim.NewEnv(2)
	raw, err := ocssd.New(env, ocssd.Config{
		Geometry: ppa.Geometry{
			Channels: 2, PUsPerChannel: 2, PlanesPerPU: 2,
			BlocksPerPlane: 4, PagesPerBlock: 8,
			SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
		},
		Timing: ocssd.DefaultTiming(),
		Media:  nand.DefaultConfig(),
		Seed:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := Register("nvme0n2", raw)
	names := Devices()
	i1, i2 := -1, -1
	for i, n := range names {
		switch n {
		case "nvme0n1":
			i1 = i
		case "nvme0n2":
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 || i1 > i2 {
		t.Fatalf("Devices() = %v; want nvme0n1 before nvme0n2", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Devices() not sorted: %v", names)
		}
	}
	if got, ok := Lookup("nvme0n2"); !ok || got != b {
		t.Fatal("Lookup(nvme0n2) did not return the new handle")
	}
	if _, ok := Lookup("no-such-device"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	// Re-registering a name replaces the handle (a device re-appearing
	// after a restart).
	b2 := Register("nvme0n2", raw)
	if got, _ := Lookup("nvme0n2"); got != b2 {
		t.Fatal("re-Register did not replace the registry entry")
	}
}
