package lightnvm

import (
	"errors"
	"testing"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

func newDevice(t *testing.T) (*sim.Env, *Device) {
	t.Helper()
	env := sim.NewEnv(1)
	m := nand.DefaultConfig()
	dev, err := ocssd.New(env, ocssd.Config{
		Geometry: ppa.Geometry{
			Channels: 2, PUsPerChannel: 2, PlanesPerPU: 2,
			BlocksPerPlane: 4, PagesPerBlock: 8,
			SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
		},
		Timing: ocssd.DefaultTiming(),
		Media:  m,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return env, Register("nvme0n1", dev)
}

type fakeTarget struct {
	name    string
	stopped bool
}

func (f *fakeTarget) TargetName() string     { return f.name }
func (f *fakeTarget) Stop(p *sim.Proc) error { f.stopped = true; return nil }

func init() {
	RegisterTargetType("fake", func(p *sim.Proc, dev *Device, name string, cfg any) (Target, error) {
		if cfg == "fail" {
			return nil, errors.New("nope")
		}
		return &fakeTarget{name: name}, nil
	})
}

func TestGeometryExposed(t *testing.T) {
	_, d := newDevice(t)
	if d.Name() != "nvme0n1" {
		t.Fatal("name")
	}
	if d.Geometry().Channels != 2 {
		t.Fatal("geometry not exposed")
	}
	if d.Identify().MaxVectorLen != ocssd.MaxVectorLen {
		t.Fatal("identify not exposed")
	}
	if d.Raw() == nil || d.Env() == nil {
		t.Fatal("raw accessors")
	}
}

func TestTargetTypeRegistry(t *testing.T) {
	found := false
	for _, n := range TargetTypes() {
		if n == "fake" {
			found = true
		}
	}
	if !found {
		t.Fatalf("fake target not listed: %v", TargetTypes())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterTargetType("fake", nil)
}

func TestTargetLifecycle(t *testing.T) {
	env, d := newDevice(t)
	env.Go("main", func(p *sim.Proc) {
		tgt, err := d.CreateTarget(p, "fake", "inst0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := d.Targets(); len(got) != 1 || got[0] != "inst0" {
			t.Fatalf("targets = %v", got)
		}
		if _, err := d.CreateTarget(p, "fake", "inst0", nil); err == nil {
			t.Fatal("duplicate instance accepted")
		}
		if _, err := d.CreateTarget(p, "missing", "x", nil); err == nil {
			t.Fatal("unknown type accepted")
		}
		if _, err := d.CreateTarget(p, "fake", "bad", "fail"); err == nil {
			t.Fatal("factory error swallowed")
		}
		if err := d.RemoveTarget(p, "inst0"); err != nil {
			t.Fatal(err)
		}
		if !tgt.(*fakeTarget).stopped {
			t.Fatal("Stop not called on removal")
		}
		if err := d.RemoveTarget(p, "inst0"); err == nil {
			t.Fatal("double remove accepted")
		}
	})
	env.Run()
}
