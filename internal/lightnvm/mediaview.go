package lightnvm

import (
	"errors"
	"fmt"

	"repro/internal/nand"
	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

// ErrOutOfPartition is returned (per address) when a vector command
// touches a PU outside the submitting view's partition.
var ErrOutOfPartition = errors.New("lightnvm: address outside target partition")

// MediaView is a target's window onto a device: the PU range it owns,
// addressed with partition-relative PU indices 0..PUs()-1. All target
// device I/O goes through the view — Submit rejects any PPA whose PU lies
// outside the partition, so a target can never touch a sibling's media —
// and the view translates between relative and global PU numbering, which
// lets the target's internal structures (pblk's group table, lane spans,
// read fan-out lists) stay dense and partition-local.
//
// Views over the full device behave exactly like the raw device plus the
// bounds check, so a single-target setup is unchanged.
type MediaView struct {
	dev        *ocssd.Device
	fmtr       ppa.Format
	tag        string // owner tag stamped on submitted vectors
	begin, end int    // global PU range [begin, end)
	full       bool   // covers the whole device: Submit skips the bounds loop
}

// newView builds a view over r for the given owner tag.
func (d *Device) newView(tag string, r PURange) *MediaView {
	return &MediaView{
		dev: d.dev, fmtr: d.dev.Format(), tag: tag,
		begin: r.Begin, end: r.End,
		full: r.Begin == 0 && r.End == d.dev.Geometry().TotalPUs(),
	}
}

// View builds an untracked MediaView over r (zero = whole device): the
// range is bounds-checked and must not overlap any PUs reserved by a
// live target — a full-device view next to a mounted tenant would let a
// foreign recovery scan reclaim the tenant's blocks — but it is NOT
// reserved in the ownership table itself. Use CreateTarget for tracked,
// exclusive partitions; View serves direct target constructors and
// tests.
func (d *Device) View(tag string, r PURange) (*MediaView, error) {
	total := d.dev.Geometry().TotalPUs()
	if r.IsZero() {
		r = PURange{0, total}
	}
	if r.Begin < 0 || r.End > total || r.Begin >= r.End {
		return nil, fmt.Errorf("lightnvm: PU range %v invalid for %d-PU device", r, total)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for pu := r.Begin; pu < r.End; pu++ {
		if own := d.owners[pu]; own != "" {
			return nil, fmt.Errorf("lightnvm: PU range %v overlaps target %q (PU %d) on %s", r, own, pu, d.name)
		}
	}
	return d.newView(tag, r), nil
}

// Tag returns the owner tag the view stamps on its vectors.
func (v *MediaView) Tag() string { return v.tag }

// Range returns the partition's global PU range.
func (v *MediaView) Range() PURange { return PURange{v.begin, v.end} }

// PUs returns the number of parallel units in the partition.
func (v *MediaView) PUs() int { return v.end - v.begin }

// Geometry returns the device geometry. Per-PU dimensions (planes, blocks,
// pages, sectors) apply to the partition as-is; device-wide counts
// (Channels, TotalPUs) describe the whole device — use PUs() for the
// partition's parallelism.
func (v *MediaView) Geometry() ppa.Geometry { return v.dev.Geometry() }

// Format returns the device's PPA bit layout.
func (v *MediaView) Format() ppa.Format { return v.fmtr }

// Identify returns the device self-description.
func (v *MediaView) Identify() ocssd.Identify { return v.dev.Identify() }

// SectorOOBSize returns the per-sector share of the page OOB area.
func (v *MediaView) SectorOOBSize() int { return v.dev.SectorOOBSize() }

// Env returns the simulation environment the device runs in.
func (v *MediaView) Env() *sim.Env { return v.dev.Env() }

// Raw returns the underlying device. Diagnostics and capacity accounting
// only — datapaths must go through the view so the partition check holds.
func (v *MediaView) Raw() *ocssd.Device { return v.dev }

// GlobalPU translates a partition-relative PU index to the device-wide
// index.
func (v *MediaView) GlobalPU(rel int) int { return v.begin + rel }

// RelativePU translates a device-wide PU index into the partition.
func (v *MediaView) RelativePU(gpu int) int { return gpu - v.begin }

// PUAddr returns the channel and in-channel PU for a partition-relative
// PU index, for building PPAs.
func (v *MediaView) PUAddr(rel int) (ch, pu int) { return v.fmtr.PUAddr(v.begin + rel) }

// Die exposes the NAND die behind a partition-relative PU index, used by
// host recovery scans and tests; production datapaths go through Submit.
func (v *MediaView) Die(rel int) *nand.Die { return v.dev.Die(v.begin + rel) }

// Contains reports whether a lies inside the partition.
func (v *MediaView) Contains(a ppa.Addr) bool {
	gpu := v.fmtr.GlobalPU(a)
	return gpu >= v.begin && gpu < v.end
}

// Submit issues a vector command asynchronously through the partition: a
// command touching any PU outside the view fails whole with
// ErrOutOfPartition per address, without reaching the device. The vector
// is stamped with the view's owner tag for the device's optional per-PU
// owner guard.
func (v *MediaView) Submit(cmd *ocssd.Vector, done func(*ocssd.Completion)) {
	if v.full {
		// Whole-device view: the partition check cannot fail and the
		// device validates raw bounds itself, so the single-target fast
		// path pays nothing per address.
		cmd.Tag = v.tag
		v.dev.Submit(cmd, done)
		return
	}
	for _, a := range cmd.Addrs {
		if gpu := v.fmtr.GlobalPU(a); gpu < v.begin || gpu >= v.end {
			comp := &ocssd.Completion{Errs: make([]error, len(cmd.Addrs))}
			err := fmt.Errorf("%w: %v (pu %d outside %v)", ErrOutOfPartition, a, gpu, v.Range())
			for i := range comp.Errs {
				comp.Errs[i] = err
				comp.Status |= 1 << uint(i)
			}
			now := v.dev.Env().Now()
			comp.Submitted, comp.Done = now, now
			v.dev.Env().Schedule(0, func() { done(comp) })
			return
		}
	}
	cmd.Tag = v.tag
	v.dev.Submit(cmd, done)
}

// Do submits cmd through the partition and blocks the calling process
// until completion.
func (v *MediaView) Do(p *sim.Proc, cmd *ocssd.Vector) *ocssd.Completion {
	ev := p.Env().NewEvent()
	var out *ocssd.Completion
	v.Submit(cmd, func(c *ocssd.Completion) {
		out = c
		ev.Signal()
	})
	p.Wait(ev)
	return out
}

// Recycle returns a completion to the device pool.
func (v *MediaView) Recycle(c *ocssd.Completion) { v.dev.Recycle(c) }

// Crash simulates power loss as seen by this partition: volatile
// controller state for the partition's PUs is dropped. A full-device view
// crashes the whole device (including pending buffered writes), matching
// the single-target behaviour.
func (v *MediaView) Crash() {
	if v.begin == 0 && v.end == v.dev.Geometry().TotalPUs() {
		v.dev.Crash()
		return
	}
	v.dev.CrashPUs(v.begin, v.end)
}
