// Package lightnvm is the open-channel SSD subsystem (paper §4.1): the
// layer between the device driver (internal/ocssd) and high-level targets.
//
// It registers devices, exposes their geometry to targets and tools (the
// kernel's nvm_dev / sysfs role), and acts as the media manager: every
// target instance is created over a parallel-unit range (the kernel's
// `nvm create` lun_begin/lun_end), the device tracks per-PU ownership so
// ranges never overlap, and each target receives a MediaView — a partition
// of the device it addresses with PU-relative indices. Several targets can
// therefore coexist on one device over disjoint PU ranges, each with its
// own FTL state, which is what makes the paper's Figure 8 isolation story
// deployable at the target level. Targets are registered by name in a
// global registry, the analogue of the kernel's target-type list; the pblk
// package registers itself on import.
package lightnvm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

// PURange is a half-open range [Begin, End) of device-wide (global) PU
// indices, the subsystem's lun_begin/lun_end. The zero value means "the
// whole device" — or, on re-creation of a target whose name has a recorded
// partition, "the range this target had before".
type PURange struct {
	Begin, End int
}

// IsZero reports whether the range is the unspecified zero value.
func (r PURange) IsZero() bool { return r.Begin == 0 && r.End == 0 }

// Width returns the number of PUs in the range.
func (r PURange) Width() int { return r.End - r.Begin }

func (r PURange) String() string { return fmt.Sprintf("[%d,%d)", r.Begin, r.End) }

// targetEntry is one target instance slot: the running target (nil while a
// CreateTarget is still constructing it) and the PU range it owns.
type targetEntry struct {
	tgt Target
	r   PURange
}

// Device is a registered open-channel SSD, the subsystem's nvm_dev.
type Device struct {
	name string
	dev  *ocssd.Device

	mu      sync.Mutex
	targets map[string]*targetEntry
	// owners maps every global PU to the target instance holding it, ""
	// when free. CreateTarget reserves exclusively; RemoveTarget releases.
	owners []string
	// parts is the partition table: instance name -> last reserved range.
	// Entries persist across RemoveTarget (within this Device's lifetime),
	// so a target re-created with a zero PURange gets its old range back.
	parts map[string]PURange
	// guard, when enabled, tags each created target's PUs on the ocssd
	// device with the instance name, so any Submit reaching a foreign
	// partition — a translation bug — panics at the device boundary.
	guard bool
}

var (
	devRegMu sync.Mutex
	// devReg enumerates registered devices by name, the subsystem's
	// /sys/class/nvme view. Re-registering a name (fresh simulation
	// environments reuse device names freely) replaces the entry.
	devReg = make(map[string]*Device)
)

// Register wraps an ocssd device into the subsystem and records it in the
// global device registry.
func Register(name string, dev *ocssd.Device) *Device {
	d := &Device{
		name:    name,
		dev:     dev,
		targets: make(map[string]*targetEntry),
		owners:  make([]string, dev.Geometry().TotalPUs()),
		parts:   make(map[string]PURange),
	}
	devRegMu.Lock()
	devReg[name] = d
	devRegMu.Unlock()
	return d
}

// Devices lists registered device names, sorted — the fleet enumeration
// used by multi-device tooling (lnvm-inspect, the volume manager).
func Devices() []string {
	devRegMu.Lock()
	defer devRegMu.Unlock()
	names := make([]string, 0, len(devReg))
	for n := range devReg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// UnregisterAll empties the device registry, dropping the subsystem's
// references to every registered device. Live *Device handles keep
// working — unregistration only affects name lookups — so a caller that
// is done with a simulation can release the device tree (NAND arenas
// included) to the garbage collector even while stale handles exist.
func UnregisterAll() {
	devRegMu.Lock()
	devReg = make(map[string]*Device)
	devRegMu.Unlock()
}

// Lookup returns a registered device by name.
func Lookup(name string) (*Device, bool) {
	devRegMu.Lock()
	defer devRegMu.Unlock()
	d, ok := devReg[name]
	return d, ok
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Geometry exposes the device geometry (sysfs analogue).
func (d *Device) Geometry() ppa.Geometry { return d.dev.Geometry() }

// Identify returns the device's full self-description.
func (d *Device) Identify() ocssd.Identify { return d.dev.Identify() }

// Raw returns the underlying device for targets issuing vector I/O.
func (d *Device) Raw() *ocssd.Device { return d.dev }

// Env returns the device's simulation environment.
func (d *Device) Env() *sim.Env { return d.dev.Env() }

// EnableOwnerGuard turns on the per-PU owner tags on the underlying
// device: every target created afterwards gets its PUs tagged with its
// instance name, and any vector command carrying a different tag panics.
// Debug aid for tests of the partition translation; off by default.
func (d *Device) EnableOwnerGuard() {
	d.mu.Lock()
	d.guard = true
	d.mu.Unlock()
}

// Target is a high-level I/O interface instantiated on a device (paper
// §4.1, layer 3). Concrete targets usually also implement blockdev.Device
// (pblk) or expose an application-specific API.
type Target interface {
	// TargetName returns the instance name.
	TargetName() string
	// Stop quiesces the target and releases its device resources. It must
	// be called from simulation context.
	Stop(p *sim.Proc) error
}

// TargetType creates target instances on a partition of a device. cfg is
// target specific; pblk takes *pblk.Config.
type TargetType func(p *sim.Proc, view *MediaView, instanceName string, cfg any) (Target, error)

var (
	regMu    sync.Mutex
	registry = make(map[string]TargetType)
)

// RegisterTargetType adds a target type to the global registry. It panics
// on duplicates, mirroring kernel module registration.
func RegisterTargetType(name string, t TargetType) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("lightnvm: duplicate target type %q", name))
	}
	registry[name] = t
}

// TargetTypes lists registered target type names, sorted.
func TargetTypes() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveRange normalizes a creation range under d.mu: a zero range means
// the instance's recorded partition when one exists, the whole device
// otherwise; explicit ranges are bounds-checked.
func (d *Device) resolveRange(instanceName string, r PURange) (PURange, error) {
	total := d.dev.Geometry().TotalPUs()
	if r.IsZero() {
		if prev, ok := d.parts[instanceName]; ok {
			return prev, nil
		}
		return PURange{0, total}, nil
	}
	if r.Begin < 0 || r.End > total || r.Begin >= r.End {
		return r, fmt.Errorf("lightnvm: PU range %v invalid for %d-PU device", r, total)
	}
	return r, nil
}

// CreateTarget instantiates a target of the given type on a PU range of
// the device (the `nvm create` ioctl with lun_begin/lun_end). The range
// must not overlap any existing target's partition; its PUs are reserved
// exclusively until RemoveTarget releases them. A zero PURange selects
// the instance's recorded partition (if this name was created before
// within this run) or the whole device. CreateTarget must run in
// simulation context because target initialization (e.g. pblk recovery
// scans) performs device I/O.
//
// The instance name and its PUs are reserved under the lock before
// construction runs: target init yields (it performs device I/O), so two
// concurrent creates of the same name or range would otherwise both pass
// the checks. A reservation with a nil target marks construction in
// flight; it is released if construction fails.
func (d *Device) CreateTarget(p *sim.Proc, typeName, instanceName string, r PURange, cfg any) (Target, error) {
	regMu.Lock()
	t, ok := registry[typeName]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lightnvm: unknown target type %q", typeName)
	}
	d.mu.Lock()
	if _, dup := d.targets[instanceName]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("lightnvm: target %q already exists on %s", instanceName, d.name)
	}
	rr, err := d.resolveRange(instanceName, r)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	for pu := rr.Begin; pu < rr.End; pu++ {
		if own := d.owners[pu]; own != "" {
			d.mu.Unlock()
			return nil, fmt.Errorf("lightnvm: PU range %v overlaps target %q (PU %d) on %s", rr, own, pu, d.name)
		}
	}
	entry := &targetEntry{r: rr} // reserve the name and the PUs
	d.targets[instanceName] = entry
	for pu := rr.Begin; pu < rr.End; pu++ {
		d.owners[pu] = instanceName
	}
	guard := d.guard
	d.mu.Unlock()
	if guard {
		for pu := rr.Begin; pu < rr.End; pu++ {
			d.dev.SetPUOwner(pu, instanceName)
		}
	}
	view := d.newView(instanceName, rr)
	tgt, err := t(p, view, instanceName, cfg)
	if err != nil {
		d.release(instanceName, rr, guard)
		return nil, fmt.Errorf("lightnvm: create %s target %q: %w", typeName, instanceName, err)
	}
	d.mu.Lock()
	entry.tgt = tgt
	d.parts[instanceName] = rr
	d.mu.Unlock()
	return tgt, nil
}

// release drops a target's name and PU reservation (create failure or
// RemoveTarget); the partition-table record is kept.
func (d *Device) release(instanceName string, r PURange, guard bool) {
	d.mu.Lock()
	delete(d.targets, instanceName)
	d.mu.Unlock()
	d.releasePUs(instanceName, r, guard)
}

// releasePUs frees a range's ownership entries and guard tags.
func (d *Device) releasePUs(instanceName string, r PURange, guard bool) {
	d.mu.Lock()
	for pu := r.Begin; pu < r.End; pu++ {
		if d.owners[pu] == instanceName {
			d.owners[pu] = ""
		}
	}
	d.mu.Unlock()
	if guard {
		for pu := r.Begin; pu < r.End; pu++ {
			d.dev.ClearPUOwner(pu)
		}
	}
}

// RemoveTarget stops and unregisters a target instance, releasing its PU
// reservation. The name is dropped immediately, but the PUs stay owned
// until Stop returns — Stop performs device I/O (GC drain, flushes), and
// handing the range to a new tenant while the old target is still
// programming it would let two FTLs write the same blocks. The
// partition-table entry survives, so re-creating the same instance name
// with a zero range restores its old partition.
func (d *Device) RemoveTarget(p *sim.Proc, instanceName string) error {
	d.mu.Lock()
	entry, ok := d.targets[instanceName]
	if ok && entry.tgt == nil {
		d.mu.Unlock()
		return fmt.Errorf("lightnvm: target %q on %s is still being created", instanceName, d.name)
	}
	if ok {
		delete(d.targets, instanceName)
	}
	guard := d.guard
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("lightnvm: no target %q on %s", instanceName, d.name)
	}
	err := entry.tgt.Stop(p)
	d.releasePUs(instanceName, entry.r, guard)
	return err
}

// Targets lists target instance names on the device, sorted. Names only
// reserved by an in-flight CreateTarget are excluded.
func (d *Device) Targets() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.targets))
	for n, e := range d.targets {
		if e.tgt == nil {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Target returns a live target instance by name.
func (d *Device) Target(name string) (Target, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.targets[name]
	if !ok || e.tgt == nil {
		return nil, false
	}
	return e.tgt, true
}

// TargetRange returns the PU range a live target instance owns.
func (d *Device) TargetRange(name string) (PURange, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.targets[name]
	if !ok || e.tgt == nil {
		return PURange{}, false
	}
	return e.r, true
}

// Wear aggregates media wear over a PU range — the media manager's
// per-tenant wear accounting. TotalPE is the sum of block P/E cycles over
// the range, MaxPE the worst single block, BadBlocks the grown + factory
// bad count. Divided by the range width these tell the operator which
// tenant is burning which partition.
type Wear struct {
	PUs       int
	TotalPE   int64
	MaxPE     int
	BadBlocks int
}

// WearOf aggregates wear counters over a PU range straight from the dies;
// it reads device state only, so it is safe outside simulation context.
func (d *Device) WearOf(r PURange) Wear {
	w := Wear{PUs: r.Width()}
	for pu := r.Begin; pu < r.End; pu++ {
		total, max, bad := d.dev.Die(pu).WearSummary()
		w.TotalPE += total
		if max > w.MaxPE {
			w.MaxPE = max
		}
		w.BadBlocks += bad
	}
	return w
}

// Partition is one row of the device partition map: a PU range and the
// state of the instance holding (or remembering) it.
type Partition struct {
	Name   string
	Range  PURange
	Active bool
	// Creating marks a reservation whose CreateTarget is still
	// constructing the target: the PUs are already exclusively held.
	Creating bool
}

// Partitions returns the device partition table — every recorded range
// plus in-flight creation reservations — sorted by range start, then
// name. This is the operator view of how the PU space is carved up;
// every row's PUs are unavailable to a new create except rows that are
// neither Active nor Creating (recorded, unmounted).
func (d *Device) Partitions() []Partition {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Partition, 0, len(d.parts)+1)
	for name, r := range d.parts {
		e, live := d.targets[name]
		if live && e.tgt == nil {
			continue // in-flight re-create: shown from the reservation below
		}
		out = append(out, Partition{Name: name, Range: r, Active: live})
	}
	for name, e := range d.targets {
		if e.tgt == nil {
			out = append(out, Partition{Name: name, Range: e.r, Creating: true})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Range.Begin != out[j].Range.Begin {
			return out[i].Range.Begin < out[j].Range.Begin
		}
		return out[i].Name < out[j].Name
	})
	return out
}
