// Package lightnvm is the open-channel SSD subsystem (paper §4.1): the
// layer between the device driver (internal/ocssd) and high-level targets.
//
// It registers devices, exposes their geometry to targets and tools (the
// kernel's nvm_dev / sysfs role), and manages target instances created on
// top of devices. Targets are registered by name in a global registry, the
// analogue of the kernel's target-type list; the pblk package registers
// itself on import.
package lightnvm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

// Device is a registered open-channel SSD, the subsystem's nvm_dev.
type Device struct {
	name string
	dev  *ocssd.Device

	mu      sync.Mutex
	targets map[string]Target
}

// Register wraps an ocssd device into the subsystem.
func Register(name string, dev *ocssd.Device) *Device {
	return &Device{name: name, dev: dev, targets: make(map[string]Target)}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Geometry exposes the device geometry (sysfs analogue).
func (d *Device) Geometry() ppa.Geometry { return d.dev.Geometry() }

// Identify returns the device's full self-description.
func (d *Device) Identify() ocssd.Identify { return d.dev.Identify() }

// Raw returns the underlying device for targets issuing vector I/O.
func (d *Device) Raw() *ocssd.Device { return d.dev }

// Env returns the device's simulation environment.
func (d *Device) Env() *sim.Env { return d.dev.Env() }

// Target is a high-level I/O interface instantiated on a device (paper
// §4.1, layer 3). Concrete targets usually also implement blockdev.Device
// (pblk) or expose an application-specific API.
type Target interface {
	// TargetName returns the instance name.
	TargetName() string
	// Stop quiesces the target and releases its device resources. It must
	// be called from simulation context.
	Stop(p *sim.Proc) error
}

// TargetType creates target instances. cfg is target specific; pblk takes
// *pblk.Config.
type TargetType func(p *sim.Proc, dev *Device, instanceName string, cfg any) (Target, error)

var (
	regMu    sync.Mutex
	registry = make(map[string]TargetType)
)

// RegisterTargetType adds a target type to the global registry. It panics
// on duplicates, mirroring kernel module registration.
func RegisterTargetType(name string, t TargetType) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("lightnvm: duplicate target type %q", name))
	}
	registry[name] = t
}

// TargetTypes lists registered target type names, sorted.
func TargetTypes() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateTarget instantiates a target of the given type on the device
// (the `nvm create` ioctl analogue). It must run in simulation context
// because target initialization (e.g. pblk recovery scans) performs
// device I/O.
//
// The instance name is reserved under the lock before construction runs:
// target init yields (it performs device I/O), so two concurrent creates
// of the same name would otherwise both pass the duplicate check and the
// second would silently overwrite the first without stopping it. A nil
// map entry marks the reservation; it is released if construction fails.
func (d *Device) CreateTarget(p *sim.Proc, typeName, instanceName string, cfg any) (Target, error) {
	regMu.Lock()
	t, ok := registry[typeName]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lightnvm: unknown target type %q", typeName)
	}
	d.mu.Lock()
	if _, dup := d.targets[instanceName]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("lightnvm: target %q already exists on %s", instanceName, d.name)
	}
	d.targets[instanceName] = nil // reserve the name
	d.mu.Unlock()
	tgt, err := t(p, d, instanceName, cfg)
	if err != nil {
		d.mu.Lock()
		delete(d.targets, instanceName)
		d.mu.Unlock()
		return nil, fmt.Errorf("lightnvm: create %s target %q: %w", typeName, instanceName, err)
	}
	d.mu.Lock()
	d.targets[instanceName] = tgt
	d.mu.Unlock()
	return tgt, nil
}

// RemoveTarget stops and unregisters a target instance.
func (d *Device) RemoveTarget(p *sim.Proc, instanceName string) error {
	d.mu.Lock()
	tgt, ok := d.targets[instanceName]
	if ok && tgt == nil {
		d.mu.Unlock()
		return fmt.Errorf("lightnvm: target %q on %s is still being created", instanceName, d.name)
	}
	delete(d.targets, instanceName)
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("lightnvm: no target %q on %s", instanceName, d.name)
	}
	return tgt.Stop(p)
}

// Targets lists target instance names on the device, sorted. Names only
// reserved by an in-flight CreateTarget are excluded.
func (d *Device) Targets() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.targets))
	for n, t := range d.targets {
		if t == nil {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
