// Quickstart: create a simulated open-channel SSD, register it with the
// LightNVM subsystem, instantiate a pblk target, and use it as an ordinary
// block device — write, flush, read back, inspect the FTL counters.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/lightnvm"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/sim"
)

func main() {
	// Everything runs on a virtual clock: device latencies are simulated
	// deterministically, so this program finishes in milliseconds of wall
	// time while reporting microsecond-accurate device behaviour.
	env := sim.NewEnv(1)

	// 1. An open-channel SSD: 16 channels x 8 PUs of MLC NAND (Westlake
	//    geometry, scaled down to 24 blocks per plane ≈ 52 GB).
	dev, err := ocssd.New(env, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Register with the LightNVM subsystem; this exposes geometry and
	//    the target framework.
	ln := lightnvm.Register("nvme0n1", dev)
	fmt.Println("registered:", ln.Name(), ln.Geometry())

	env.Go("main", func(p *sim.Proc) {
		// 3. Create a pblk target: a full host-side FTL exposing the SSD
		//    as a block device (the `nvm create -t pblk` analogue).
		tgt, err := ln.CreateTarget(p, "pblk", "pblk0", lightnvm.PURange{}, pblk.Config{})
		if err != nil {
			log.Fatal(err)
		}
		k := tgt.(*pblk.Pblk)
		fmt.Printf("pblk0: %d MB usable, %d active write PUs\n",
			k.Capacity()>>20, k.ActivePUs())

		// 4. Block I/O: write a record, flush for durability, read back.
		record := bytes.Repeat([]byte("open-channel "), 316)[:4096]
		start := env.Now()
		if err := k.Write(p, 0, record, int64(len(record))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("write acknowledged in %v (buffered in the host write buffer)\n", env.Now()-start)

		start = env.Now()
		if err := k.Flush(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flush (padding to a full flash page) took %v\n", env.Now()-start)

		got := make([]byte, len(record))
		start = env.Now()
		if err := k.Read(p, 0, got, int64(len(got))); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read back in %v, content ok: %v\n", env.Now()-start, bytes.Equal(got, record))

		// 5. FTL introspection.
		fmt.Printf("stats: %d sectors written, %d padded, %d flushes, %d free block groups\n",
			k.Stats.UserWrites, k.Stats.PaddedSectors, k.Stats.Flushes, k.FreeGroups())

		if err := ln.RemoveTarget(p, "pblk0"); err != nil {
			log.Fatal(err)
		}
	})
	env.Run()
}
