// failover: the volume manager's fault-tolerance lifecycle end to end —
// write a checksummed dataset onto a mirrored volume, kill one member
// mid-life, prove every acknowledged byte still reads back in degraded
// mode, attach a hot spare, and verify again after the online rebuild.
//
// This is the fleet-level counterpart of the paper's single-device
// reliability story: each member runs its own pblk FTL (host-side mapping,
// GC, scan recovery), and the volume layer above composes them into an
// array a device death cannot take down.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/pblk"
	"repro/internal/sim"
	"repro/internal/volume"
)

// fill writes a position-dependent pattern: any lost, stale, or misplaced
// chunk shows up as a checksum mismatch at its exact offset.
func fill(buf []byte, off int64) {
	for i := range buf {
		x := off + int64(i)
		buf[i] = byte(x) ^ byte(x>>11) ^ 0x4F
	}
}

func main() {
	env := sim.NewEnv(1)
	env.Go("failover", func(p *sim.Proc) {
		// A fleet of three: two mirror members and one hot spare.
		mgr, err := volume.NewManager(p, env, volume.Config{
			Devices: 2, Spares: 1,
			OCSSD: volume.DefaultDeviceConfig(24),
			Pblk:  pblk.Config{OverProvision: 0.2},
			Seed:  1,
		})
		if err != nil {
			log.Fatal(err)
		}
		v, err := mgr.CreateVolume("mirror0", volume.Mirror(0, 1),
			volume.Options{Rebuild: volume.RebuildConfig{RateMBps: 300}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("volume %s: %s, %d MB\n", v.Name(), v.LayoutString(), v.Capacity()>>20)

		// 1. Write and flush a checksummed dataset.
		const step = 256 << 10
		data := v.Capacity() / 4 / step * step
		buf := make([]byte, step)
		for off := int64(0); off < data; off += step {
			fill(buf, off)
			if err := v.Write(p, off, buf, step); err != nil {
				log.Fatalf("write at %d: %v", off, err)
			}
		}
		if err := v.Flush(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dataset: %d MB written, flushed, mirrored on both members\n", data>>20)

		verify := func(phase string) {
			bad := 0
			for off := int64(0); off < data; off += step {
				if err := v.Read(p, off, buf, step); err != nil {
					log.Fatalf("%s: read at %d: %v", phase, off, err)
				}
				for i := range buf {
					x := off + int64(i)
					if buf[i] != byte(x)^byte(x>>11)^0x4F {
						bad++
					}
				}
			}
			fmt.Printf("%s: %d MB scanned, %d mismatched bytes\n", phase, data>>20, bad)
			if bad != 0 {
				log.Fatalf("%s: data loss detected", phase)
			}
		}

		// 2. Kill one mirror member: the drive drops off the bus, its FTL
		// state dies with it. The volume keeps serving from the survivor.
		mgr.Kill(1)
		fmt.Printf("\nmember 1 killed: volume degraded=%v, member state=%v\n",
			v.Degraded(), mgr.Member(1).State())
		verify("degraded scan")

		// 3. Attach the hot spare: the rebuild engine copies the surviving
		// replica onto it at a capped rate while the volume stays online.
		sp := mgr.TakeSpare()
		if sp == nil {
			log.Fatal("no hot spare left")
		}
		if err := v.AttachSpare(sp); err != nil {
			log.Fatal(err)
		}
		start := env.Now()
		if !v.WaitRebuild(p) {
			log.Fatal("rebuild failed")
		}
		fmt.Printf("\nrebuild onto %s finished in %v: degraded=%v\n",
			sp.Name(), (env.Now() - start).Round(time.Millisecond), v.Degraded())

		// 4. The rebuilt mirror must byte-match: scrub replicas against
		// each other, then checksum the dataset once more.
		rep, err := v.Resync(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resync scrub: %d chunks compared, %d mismatched\n",
			rep.ChunksScanned, rep.ChunksMismatched)
		verify("post-rebuild scan")
		fmt.Println("\nzero acknowledged bytes lost across death, degraded serving, and rebuild")
	})
	env.Run()
}
