// kvstore: an application-specific FTL on the raw PPA interface — the
// class of design the paper's §5.5 and future work motivate (e.g. Baidu's
// LSM KV store on open-channel SSDs).
//
// Instead of going through pblk's generic block abstraction, the store
// appends values to per-PU log blocks it manages itself: no mapping-table
// indirection on the data path, whole-block invalidation on log rotation
// (no sector-granular GC), and put/get streams placed on the exact PUs the
// application chooses. The index lives in host memory, keyed to packed
// 64-bit PPAs.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/ocssd"
	"repro/internal/ppa"
	"repro/internal/sim"
)

// kvStore is a tiny append-only KV store over raw PPAs.
type kvStore struct {
	dev   *ocssd.Device
	fmtr  ppa.Format
	pus   []int
	index map[string]uint64 // key -> packed PPA of the value's sector

	cursor map[int]*struct{ blk, page, sector int }
}

func newKVStore(dev *ocssd.Device, pus []int) *kvStore {
	s := &kvStore{
		dev: dev, fmtr: dev.Format(), pus: pus,
		index:  make(map[string]uint64),
		cursor: make(map[int]*struct{ blk, page, sector int }),
	}
	for _, pu := range pus {
		s.cursor[pu] = &struct{ blk, page, sector int }{}
	}
	return s
}

// put appends one 4K value. Values accumulate host-side until a full flash
// page per plane set can be programmed; for brevity this demo writes one
// page (all sectors carry the value replicated) per put on plane 0.
func (s *kvStore) put(p *sim.Proc, key string, value []byte) error {
	g := s.dev.Geometry()
	pu := s.pus[len(s.index)%len(s.pus)] // spread keys across our PUs
	ch, puIdx := s.fmtr.PUAddr(pu)
	cur := s.cursor[pu]
	if cur.page == 0 && cur.sector == 0 && cur.blk > 0 {
		// Rotating into a reused block would need an erase; this demo
		// never wraps.
		_ = cur
	}
	// Program one full page on every plane (the device's write rule), with
	// the value in the first sector.
	var addrs []ppa.Addr
	var data [][]byte
	for pl := 0; pl < g.PlanesPerPU; pl++ {
		for sec := 0; sec < g.SectorsPerPage; sec++ {
			addrs = append(addrs, ppa.Addr{Ch: ch, PU: puIdx, Plane: pl, Block: cur.blk, Page: cur.page, Sector: sec})
			if pl == 0 && sec == 0 {
				buf := make([]byte, g.SectorSize)
				copy(buf, value)
				data = append(data, buf)
			} else {
				data = append(data, nil)
			}
		}
	}
	c := s.dev.Do(p, &ocssd.Vector{Op: ocssd.OpWrite, Addrs: addrs, Data: data})
	if c.Failed() {
		return fmt.Errorf("put %q: %v", key, c.FirstErr())
	}
	s.index[key] = s.fmtr.Encode(addrs[0])
	cur.page++
	if cur.page >= g.PagesPerBlock {
		cur.page = 0
		cur.blk++
	}
	return nil
}

// get reads the value's sector straight from its PPA: one vector read, no
// FTL lookup on the device.
func (s *kvStore) get(p *sim.Proc, key string) ([]byte, error) {
	packed, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("get %q: not found", key)
	}
	addr := s.fmtr.Decode(packed)
	c := s.dev.Do(p, &ocssd.Vector{Op: ocssd.OpRead, Addrs: []ppa.Addr{addr}})
	if c.Failed() {
		return nil, c.FirstErr()
	}
	return c.Data[0], nil
}

func main() {
	env := sim.NewEnv(5)
	dev, err := ocssd.New(env, ocssd.DefaultConfig(8))
	if err != nil {
		log.Fatal(err)
	}
	env.Go("main", func(p *sim.Proc) {
		store := newKVStore(dev, []int{0, 8, 16, 24}) // one PU per channel 0..3

		n := 64
		t0 := env.Now()
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("user:%04d", i)
			val := bytes.Repeat([]byte{byte(i)}, 128)
			if err := store.put(p, key, val); err != nil {
				log.Fatal(err)
			}
		}
		putDur := env.Now() - t0
		fmt.Printf("put %d values in %v virtual (%.0f puts/s)\n",
			n, putDur.Round(time.Microsecond), float64(n)/putDur.Seconds())

		t0 = env.Now()
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("user:%04d", i)
			val, err := store.get(p, key)
			if err != nil {
				log.Fatal(err)
			}
			if val[0] != byte(i) {
				log.Fatalf("corruption at %s", key)
			}
		}
		getDur := env.Now() - t0
		fmt.Printf("got %d values in %v virtual (avg %v per get — one flash read, no FTL)\n",
			n, getDur.Round(time.Microsecond), (getDur / time.Duration(n)).Round(time.Microsecond))
		fmt.Printf("device stats: %d flash programs, %d flash reads, %d cache hits\n",
			dev.Stats.FlashPrograms, dev.Stats.FlashReads, dev.Stats.CacheHits)
	})
	env.Run()
}
