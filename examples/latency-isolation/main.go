// Latency isolation (the paper's Figure 8 scenario), three ways. A
// latency-critical 4K random reader shares one open-channel SSD with a
// bulk 64K writer:
//
//  1. partitioned pblk targets — the media manager carves the device into
//     two PU ranges (`nvm create` with lun_begin/lun_end) and each tenant
//     gets its own block device; the writer's programs and GC never touch
//     the reader's PUs, so the reader's tail stays flat with no
//     application changes;
//  2. one shared pblk — both tenants on a single full-device block
//     target; the FTL stripes them over the same PUs and reads queue
//     behind writes;
//  3. raw PPA placement — the application drives vector I/O on
//     hand-picked PUs itself (the paper's original demonstration; what
//     partitioned targets package up behind the block API).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/blockdev"
	"repro/internal/fio"
	"repro/internal/lightnvm"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/sim"
)

const runFor = 80 * time.Millisecond

// align rounds n down to a multiple of unit, keeping regions request-aligned.
func align(n, unit int64) int64 { return n / unit * unit }

func main() {
	partitioned()
	shared()
	rawPPA()
}

// tenantMix runs the reader/writer pair over two block devices (which may
// be the same device) and reports the reader's latency summary.
func tenantMix(p *sim.Proc, env *sim.Env, rdev, wdev blockdev.Device, rOff, rSize, wOff, wSize int64) fio.Result {
	if err := fio.Prepare(p, rdev, rOff, rSize); err != nil {
		log.Fatal(err)
	}
	done := env.NewEvent()
	env.Go("bulk-writer", func(pw *sim.Proc) {
		if _, err := fio.Run(pw, wdev, fio.Job{Name: "bulk", Pattern: fio.SeqWrite, BS: 64 << 10,
			QD: 8, Offset: wOff, Size: wSize, Runtime: runFor}); err != nil {
			log.Fatal(err)
		}
		done.Signal()
	})
	r, err := fio.Run(p, rdev, fio.Job{Name: "latency", Pattern: fio.RandRead, BS: 4 << 10,
		Offset: rOff, Size: rSize, Runtime: runFor, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	p.Wait(done)
	return *r
}

// partitioned mounts two pblk targets over disjoint PU ranges of one
// device: the reader tenant on the first half, the writer on the second.
func partitioned() {
	env := sim.NewEnv(7)
	dev, err := ocssd.New(env, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	ln := lightnvm.Register("nvme0n1", dev)
	half := dev.Geometry().TotalPUs() / 2
	env.Go("partitioned", func(p *sim.Proc) {
		rt, err := ln.CreateTarget(p, "pblk", "pblk-lat",
			lightnvm.PURange{Begin: 0, End: half}, pblk.Config{})
		if err != nil {
			log.Fatal(err)
		}
		wt, err := ln.CreateTarget(p, "pblk", "pblk-bulk",
			lightnvm.PURange{Begin: half, End: 2 * half}, pblk.Config{})
		if err != nil {
			log.Fatal(err)
		}
		kr, kw := rt.(*pblk.Pblk), wt.(*pblk.Pblk)
		size := align(kr.Capacity()/8, 256<<10)
		r := tenantMix(p, env, kr, kw, 0, size, 0, align(kw.Capacity()/8, 64<<10))
		s := r.ReadLat.Summarize()
		fmt.Printf("partitioned pblk targets: reader p99 = %v, max = %v (own PU range %v: flat)\n",
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond), kr.Partition())
		if err := ln.RemoveTarget(p, "pblk-lat"); err != nil {
			log.Fatal(err)
		}
		if err := ln.RemoveTarget(p, "pblk-bulk"); err != nil {
			log.Fatal(err)
		}
	})
	env.Run()
}

// shared runs the same mix through a single full-device pblk: reads queue
// behind writes on whatever PU the FTL chose.
func shared() {
	env := sim.NewEnv(7)
	dev, err := ocssd.New(env, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	ln := lightnvm.Register("nvme0n1", dev)
	env.Go("shared", func(p *sim.Proc) {
		k, err := pblk.New(p, ln, "pblk0", pblk.Config{})
		if err != nil {
			log.Fatal(err)
		}
		defer k.Stop(p)
		size := align(k.Capacity()/8, 256<<10)
		r := tenantMix(p, env, k, k, 0, size, size, size)
		s := r.ReadLat.Summarize()
		fmt.Printf("shared pblk target:       reader p99 = %v, max = %v (reads stuck behind writes)\n",
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	})
	env.Run()
}

// rawPPA is the paper's original application-managed form: vector I/O on
// hand-picked disjoint PUs, no FTL at all.
func rawPPA() {
	env := sim.NewEnv(7)
	dev, err := ocssd.New(env, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	readPUs := []int{0, 1, 2, 3}      // latency-critical tenant
	writePUs := []int{64, 65, 66, 67} // bulk-ingest tenant, other channels
	env.Go("raw-ppa", func(p *sim.Proc) {
		if err := fio.PreparePPA(p, dev, readPUs, 4); err != nil {
			log.Fatal(err)
		}
		done := env.NewEvent()
		env.Go("bulk-writer", func(pw *sim.Proc) {
			fio.RunPPA(pw, dev, fio.PPAJob{
				Name: "bulk", Pattern: fio.SeqWrite, BS: 64 << 10, QD: 1,
				PUs: writePUs, Blocks: 6, Runtime: runFor,
			})
			done.Signal()
		})
		r := fio.RunPPA(p, dev, fio.PPAJob{
			Name: "latency", Pattern: fio.RandRead, BS: 4 << 10, QD: 1,
			PUs: readPUs, Blocks: 4, Runtime: runFor, Seed: 3,
		})
		p.Wait(done)
		s := r.ReadLat.Summarize()
		fmt.Printf("raw PPA placement:        reader p99 = %v, max = %v (application-managed PUs)\n",
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	})
	env.Run()
}
