// Latency isolation (the paper's Figure 8 scenario): two streams of vector
// I/O go directly to the open-channel SSD through the PPA interface — a
// latency-critical 4K random reader and a bulk 64K writer. Because the
// host controls placement, the streams live on disjoint PUs and the
// reader's tail latency stays flat no matter how hard the writer pushes.
// Run the same mix through the pblk block device (all PUs shared) for the
// contrast.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fio"
	"repro/internal/lightnvm"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/sim"
)

func main() {
	env := sim.NewEnv(7)
	dev, err := ocssd.New(env, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	readPUs := []int{0, 1, 2, 3}      // latency-critical tenant
	writePUs := []int{64, 65, 66, 67} // bulk-ingest tenant, other channels

	env.Go("isolated", func(p *sim.Proc) {
		if err := fio.PreparePPA(p, dev, readPUs, 4); err != nil {
			log.Fatal(err)
		}
		done := env.NewEvent()
		env.Go("bulk-writer", func(pw *sim.Proc) {
			fio.RunPPA(pw, dev, fio.PPAJob{
				Name: "bulk", Pattern: fio.SeqWrite, BS: 64 << 10, QD: 1,
				PUs: writePUs, Blocks: 6, Runtime: 80 * time.Millisecond,
			})
			done.Signal()
		})
		r := fio.RunPPA(p, dev, fio.PPAJob{
			Name: "latency", Pattern: fio.RandRead, BS: 4 << 10, QD: 1,
			PUs: readPUs, Blocks: 4, Runtime: 80 * time.Millisecond, Seed: 3,
		})
		p.Wait(done)
		s := r.ReadLat.Summarize()
		fmt.Printf("PU-isolated streams: reader p99 = %v, max = %v (flat: writes never block reads)\n",
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	})
	env.Run()

	// The same mix through a shared block device: reads queue behind
	// writes on whatever PU the FTL chose.
	env2 := sim.NewEnv(7)
	dev2, err := ocssd.New(env2, ocssd.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	ln := lightnvm.Register("nvme0n1", dev2)
	env2.Go("shared", func(p *sim.Proc) {
		k, err := pblk.New(p, ln, "pblk0", pblk.Config{})
		if err != nil {
			log.Fatal(err)
		}
		defer k.Stop(p)
		size := k.Capacity() / 4
		if err := fio.Prepare(p, k, 0, size); err != nil {
			log.Fatal(err)
		}
		done := env2.NewEvent()
		env2.Go("bulk-writer", func(pw *sim.Proc) {
			if _, err := fio.Run(pw, k, fio.Job{Name: "bulk", Pattern: fio.SeqWrite, BS: 64 << 10,
				Offset: size, Size: size, Runtime: 80 * time.Millisecond}); err != nil {
				log.Fatal(err)
			}
			done.Signal()
		})
		r, err := fio.Run(p, k, fio.Job{Name: "latency", Pattern: fio.RandRead, BS: 4 << 10,
			Size: size, Runtime: 80 * time.Millisecond, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		p.Wait(done)
		s := r.ReadLat.Summarize()
		fmt.Printf("shared block device:  reader p99 = %v, max = %v (reads stuck behind writes)\n",
			s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
	})
	env2.Run()
}
