// Package repro_test hosts one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark executes the corresponding
// harness experiment end to end (device build, workload, measurement) in
// quick mode and reports the key simulated metric alongside Go's wall-time
// figures. For the full paper-scale output, run `go run ./cmd/lnvm-bench
// <id>` instead.
package repro_test

import (
	"bytes"
	"io"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/harness"
)

func quickOpts() harness.Options {
	return harness.Defaults(harness.Options{
		Quick:    true,
		Duration: 20 * time.Millisecond,
	})
}

func runExperiment(b *testing.B, id string, out io.Writer) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(quickOpts(), out); err != nil {
			b.Fatal(err)
		}
	}
}

// firstNumberAfter extracts the first numeric field following a label in
// experiment output, for ReportMetric.
func firstNumberAfter(out, label string) float64 {
	re := regexp.MustCompile(regexp.QuoteMeta(label) + `[^0-9-]*([0-9]+(\.[0-9]+)?)`)
	m := re.FindStringSubmatch(out)
	if len(m) < 2 {
		return 0
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	return v
}

func BenchmarkTable1(b *testing.B) {
	var buf bytes.Buffer
	runExperiment(b, "table1", &buf)
	b.ReportMetric(firstNumberAfter(buf.String(), "Single Seq. PU Write"), "singlePU-write-MBps")
}

func BenchmarkOverhead(b *testing.B) {
	var buf bytes.Buffer
	runExperiment(b, "overhead", &buf)
	b.ReportMetric(firstNumberAfter(buf.String(), "null + pblk datapath"), "pblk-read-us")
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", io.Discard)
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", io.Discard)
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", io.Discard)
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", io.Discard)
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", io.Discard)
}
