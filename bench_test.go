// Package repro_test hosts one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark executes the corresponding
// harness experiment end to end (device build, workload, measurement) in
// quick mode and reports the key simulated metric alongside Go's wall-time
// figures. For the full paper-scale output, run `go run ./cmd/lnvm-bench
// <id>` instead.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/fio"
	"repro/internal/harness"
	"repro/internal/lightnvm"
	"repro/internal/nand"
	"repro/internal/nullblk"
	"repro/internal/ocssd"
	"repro/internal/pblk"
	"repro/internal/ppa"
	"repro/internal/sim"
	"repro/internal/volume"
)

func quickOpts() harness.Options {
	return harness.Defaults(harness.Options{
		Quick:    true,
		Duration: 20 * time.Millisecond,
	})
}

func runExperiment(b *testing.B, id string, out io.Writer) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(quickOpts(), out); err != nil {
			b.Fatal(err)
		}
	}
}

// firstNumberAfter extracts the first numeric field following a label in
// experiment output, for ReportMetric.
func firstNumberAfter(out, label string) float64 {
	re := regexp.MustCompile(regexp.QuoteMeta(label) + `[^0-9-]*([0-9]+(\.[0-9]+)?)`)
	m := re.FindStringSubmatch(out)
	if len(m) < 2 {
		return 0
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	return v
}

func BenchmarkTable1(b *testing.B) {
	var buf bytes.Buffer
	runExperiment(b, "table1", &buf)
	b.ReportMetric(firstNumberAfter(buf.String(), "Single Seq. PU Write"), "singlePU-write-MBps")
}

func BenchmarkOverhead(b *testing.B) {
	var buf bytes.Buffer
	runExperiment(b, "overhead", &buf)
	b.ReportMetric(firstNumberAfter(buf.String(), "null + pblk datapath"), "pblk-read-us")
}

func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", io.Discard)
}

func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", io.Discard)
}

func BenchmarkFig6(b *testing.B) {
	runExperiment(b, "fig6", io.Discard)
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", io.Discard)
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", io.Discard)
}

// BenchmarkLaneScaling measures pblk write throughput against the number
// of active write PUs at QD32: with the sharded per-lane writers every
// active PU drains its own slice of the ring buffer, so the simulated
// write bandwidth should scale near-linearly (16 lanes well above 2x the
// single-lane figure). The full sweep with per-lane stall/depth telemetry
// is `go run ./cmd/lnvm-bench lanes`.
func BenchmarkLaneScaling(b *testing.B) {
	for _, act := range []int{1, 4, 16, 128} {
		b.Run(fmt.Sprintf("pus%d", act), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				env := sim.NewEnv(1)
				m := nand.DefaultConfig()
				m.PECycleLimit = 0
				m.WearLatencyFactor = 0
				dev, err := ocssd.New(env, ocssd.Config{
					Geometry:  ocssd.WestlakeGeometry(24),
					Timing:    ocssd.DefaultTiming(),
					Media:     m,
					PageCache: true,
					Seed:      1,
				})
				if err != nil {
					b.Fatal(err)
				}
				ln := lightnvm.Register("bench", dev)
				var res *fio.Result
				env.Go("main", func(p *sim.Proc) {
					k, err := pblk.New(p, ln, "pblk0", pblk.Config{ActivePUs: act})
					if err != nil {
						b.Error(err)
						return
					}
					defer k.Stop(p)
					span := k.Capacity() / 4 / (256 << 10) * (256 << 10)
					res, err = fio.Run(p, k, fio.Job{
						Name: "lanes", Pattern: fio.SeqWrite, BS: 64 << 10,
						QD: 32, Size: span, Runtime: 20 * time.Millisecond,
					})
					if err != nil {
						b.Error(err)
					}
				})
				env.Run()
				if res != nil {
					mbps = res.WriteMBps()
				}
			}
			b.ReportMetric(mbps, "sim-write-MBps")
		})
	}
}

// BenchmarkLanes wraps the harness lane-scaling experiment end to end.
func BenchmarkLanes(b *testing.B) {
	runExperiment(b, "lanes", io.Discard)
}

// BenchmarkGCSweep runs the steady-state overwrite experiment: write
// amplification with and without the dedicated GC write stream, and
// sustained throughput across GC pipeline depths. The reported metrics
// are the dual-stream default's WA (expected below the single-stream
// baseline's) and its sustained MB/s. Full tables:
// `go run ./cmd/lnvm-bench wa`.
func BenchmarkGCSweep(b *testing.B) {
	var buf bytes.Buffer
	runExperiment(b, "wa", &buf)
	out := buf.String()
	b.ReportMetric(firstNumberAfter(out, "single-stream (baseline)"), "single-stream-MBps")
	b.ReportMetric(firstNumberAfter(out, "dual-stream depth=2 (default)"), "dual-stream-MBps")
	b.ReportMetric(firstNumberAfter(out, "depth=1 (sequential reclaim)"), "gc-depth1-MBps")
	b.ReportMetric(firstNumberAfter(out, "depth=4"), "gc-depth4-MBps")
}

// BenchmarkQDSweep records the perf trajectory of the block-engine
// redesign: the asynchronous queue engine (one worker process sustaining
// QD via a blockdev.Queue) against the seed's proc-per-request scheme
// (QD cloned workers each issuing blocking calls). Simulated IOPS should
// match between engines; the wall-clock ns/op captures the host-side cost
// of faking depth with processes.
func BenchmarkQDSweep(b *testing.B) {
	engines := map[string]func(*sim.Proc, *nullblk.Device, fio.Job) (*fio.Result, error){
		"queue": func(p *sim.Proc, d *nullblk.Device, j fio.Job) (*fio.Result, error) {
			return fio.Run(p, d, j)
		},
		"cloned": func(p *sim.Proc, d *nullblk.Device, j fio.Job) (*fio.Result, error) {
			return fio.RunCloned(p, d, j)
		},
	}
	for _, qd := range []int{1, 8, 32} {
		for _, name := range []string{"queue", "cloned"} {
			run := engines[name]
			b.Run(fmt.Sprintf("%s-qd%d", name, qd), func(b *testing.B) {
				var iops float64
				for i := 0; i < b.N; i++ {
					env := sim.NewEnv(1)
					dev := nullblk.New(nullblk.DefaultConfig())
					var res *fio.Result
					var err error
					env.Go("main", func(p *sim.Proc) {
						res, err = run(p, dev, fio.Job{
							Name: "sweep", Pattern: fio.RandRead, BS: 4096,
							QD: qd, Runtime: 20 * time.Millisecond,
						})
					})
					env.Run()
					if err != nil {
						b.Fatal(err)
					}
					iops = float64(res.Reads) / res.Elapsed.Seconds()
				}
				b.ReportMetric(iops, "sim-iops")
			})
		}
	}
	// Volume entries: the same QD32 randread, but through the fan-out and
	// replication layer over a two-device fleet, so the pooled split path
	// (chunk math, child requests, member queues) shows up in the same
	// alloc/ns trajectory as the flat queue engine.
	layouts := []struct {
		name   string
		layout volume.Layout
	}{
		{"volume-stripe", volume.Stripe(64<<10, 0, 1)},
		{"volume-mirror", volume.Mirror(0, 1)},
	}
	for _, lo := range layouts {
		b.Run(lo.name+"-qd32", func(b *testing.B) {
			// Build the fleet, volume, and mapped region once; each timed
			// iteration runs one fio job against the live volume, so
			// allocs/op measures the split/replicate request path, not
			// device construction and priming.
			const region = 4 << 20
			env := sim.NewEnv(1)
			var v *volume.Volume
			env.Go("setup", func(p *sim.Proc) {
				mgr, err := volume.NewManager(p, env, volume.Config{
					Devices: 2, OCSSD: volume.DefaultDeviceConfig(20),
					Pblk: pblk.Config{OverProvision: 0.25}, Seed: 1,
				})
				if err != nil {
					b.Error(err)
					return
				}
				v, err = mgr.CreateVolume("sweep", lo.layout, volume.Options{})
				if err != nil {
					b.Error(err)
					return
				}
				// Map a small region so the reads hit real data.
				buf := make([]byte, 256<<10)
				for off := int64(0); off < region; off += int64(len(buf)) {
					if err := v.Write(p, off, buf, int64(len(buf))); err != nil {
						b.Error(err)
						return
					}
				}
				if err := v.Flush(p); err != nil {
					b.Error(err)
				}
			})
			env.Run()
			if v == nil {
				b.Fatal("volume setup failed")
			}
			var iops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var res *fio.Result
				env.Go("fio", func(p *sim.Proc) {
					var ferr error
					res, ferr = fio.Run(p, v, fio.Job{
						Name: "sweep", Pattern: fio.RandRead, BS: 4096,
						QD: 32, Size: region, Runtime: 20 * time.Millisecond,
					})
					if ferr != nil {
						b.Error(ferr)
					}
				})
				env.Run()
				if res != nil {
					iops = float64(res.Reads) / res.Elapsed.Seconds()
				}
			}
			b.ReportMetric(iops, "sim-iops")
		})
	}
}

// BenchmarkBigGeometry proves the allocation-free request path holds at
// fleet-scale geometries: pblk mounted over 512- and 1024-PU devices
// (32 channels) with queue depths in the thousands, a shape where the
// seed's proc-per-request engine and slice-shift queues would drown in
// scheduler and GC work. The device is mounted once per sub-benchmark
// and each iteration runs one fio job against the live instance, so
// allocs/op measures the request path itself, not mount and recovery.
// Blocks per plane are kept small so the media map stays bounded; the
// metric is simulated IOPS of a mixed 70/30 random workload.
func BenchmarkBigGeometry(b *testing.B) {
	cases := []struct {
		name          string
		channels, pus int
		qd            int
		shards        int // 0 = serial engine; N = sharded with N device shards
	}{
		{"pus512-qd2048", 32, 16, 2048, 0},
		{"pus1024-qd4096", 32, 32, 4096, 0},
		{"pus512-qd2048-parallel", 32, 16, 2048, 4},
		{"pus1024-qd4096-parallel", 32, 32, 4096, 4},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m := nand.DefaultConfig()
			m.PECycleLimit = 0
			m.WearLatencyFactor = 0
			cfg := ocssd.Config{
				Geometry: ppa.Geometry{
					Channels: c.channels, PUsPerChannel: c.pus,
					PlanesPerPU: 1, BlocksPerPlane: 8, PagesPerBlock: 64,
					SectorsPerPage: 4, SectorSize: 4096, OOBPerPage: 64,
				},
				Timing:    ocssd.DefaultTiming(),
				Media:     m,
				PageCache: true,
				Seed:      1,
			}
			var env *sim.Env
			var dev *ocssd.Device
			var err error
			if c.shards > 0 {
				se := sim.NewShardedEnv(1, 1+c.shards)
				se.SetLookahead(2 * time.Microsecond)
				se.SetWorkers(runtime.GOMAXPROCS(0))
				shards := make([]*sim.Env, c.shards)
				for s := range shards {
					shards[s] = se.Shard(1 + s)
				}
				cfg.Timing.SubmitLatency = 2 * time.Microsecond
				cfg.Timing.CompleteLatency = 2 * time.Microsecond
				env = se.Host()
				dev, err = ocssd.NewSharded(env, shards, cfg)
			} else {
				env = sim.NewEnv(1)
				dev, err = ocssd.New(env, cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			ln := lightnvm.Register("bigbench", dev)
			var k *pblk.Pblk
			env.Go("mount", func(p *sim.Proc) {
				k, err = pblk.New(p, ln, "pblk-big", pblk.Config{
					ActivePUs: c.channels * c.pus, OverProvision: 0.4,
				})
			})
			env.Run()
			if err != nil {
				b.Fatal(err)
			}
			span := k.Capacity() / 8 / (256 << 10) * (256 << 10)
			var iops float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var res *fio.Result
				env.Go("fio", func(p *sim.Proc) {
					var ferr error
					res, ferr = fio.Run(p, k, fio.Job{
						Name: "big", Pattern: fio.RandRW, RWMixRead: 70,
						BS: 4096, QD: c.qd, Size: span,
						Runtime: 2 * time.Millisecond,
					})
					if ferr != nil {
						b.Error(ferr)
					}
				})
				env.Run()
				if res != nil {
					iops = float64(res.Reads+res.Writes) / res.Elapsed.Seconds()
				}
			}
			b.StopTimer()
			env.Go("stop", func(p *sim.Proc) { k.Stop(p) })
			env.Run()
			b.ReportMetric(iops, "sim-iops")
		})
	}
}
